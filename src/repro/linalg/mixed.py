"""Mixed-precision batched LU with iterative refinement.

The classic hybrid-supercomputer trick contemporaneous with the paper
(MAGMA's ``zcgesv``): factorize the ``(nE, n, n)`` stack in complex64 —
an O(n^3) saving, since single-precision GETRF runs ~2x faster on the
same hardware — then recover complex128 accuracy with cheap O(n^2)
iterative refinement:

.. code-block:: text

    A32 = c64(A);  LU = cgetrf(A32)          # fast low-precision factor
    x   = z(cgetrs(LU, c64(b)))              # low-precision first solve
    repeat: r = b - A @ x                    # double-precision residual
            x += z(cgetrs(LU, c64(r)))       # refine failing slices only

A per-slice residual gate (``||A_e x_e - b_e|| / ||b_e||`` against
:attr:`MixedPrecisionBackend.tol`) decides convergence independently
for every energy; slices that do not reach the gate within
:attr:`MixedPrecisionBackend.max_refine_iters` sweeps fall back to a
per-slice double-precision factorization — so ill-conditioned energies
silently get the reference answer while the well-conditioned bulk
keeps the speedup.  Slices whose complex64 cast overflows are flagged
at factor time and never touch the low-precision path.

Ledger discipline matches the reference backend: one record per
batched sweep, analytic flop counts (precision-independent — the
operation counts of ``cgetrf``/``zgetrf`` are identical), and actual
bytes of the arrays touched (complex64 traffic is half the
double-precision figure).  ``cgetrf_batched``/``cgetrs_batched``
kernel names distinguish the low-precision sweeps in activity traces;
per-slice fallbacks record ``zgetrf_batched``/``zgetrs_batched`` with
a ``|fallback`` tag.  Byte formulas live in
:mod:`repro.perfmodel.bytemodel` (``mixed_lu_factor_bytes`` and
friends) so ``choose_batch_solver(machine=)`` can price the mode.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import scipy.linalg as sla
from scipy.linalg import lapack as _lap

from repro.linalg import flops as _fl
from repro.linalg.backend import BackendCapabilities, KernelBackend
from repro.linalg.batched import _check_stack, _record
from repro.observability.spans import current_tracer
from repro.utils.errors import SingularMatrixError

#: Default relative-residual convergence gate of the refinement loop.
DEFAULT_RESIDUAL_TOL = 1e-10

#: Default refinement sweeps before a slice falls back to double.
DEFAULT_MAX_REFINE_ITERS = 3


class MixedLUFactor:
    """Opaque factor object of the mixed backend.

    Holds the complex64 LU factors *and* a complex128 copy of the
    input stack: residuals must be computed against the original
    matrices, and callers (the RGF sweeps, via the workspace arena) are
    free to reuse the input buffer the moment ``lu_factor_batched``
    returns.  Per-slice double-precision fallback factors are computed
    lazily at solve time and cached here, so the repeated solves of one
    RGF sweep pay each fallback factorization once.
    """

    def __init__(self, lu32, piv, a, bad_slices):
        self.lu32 = lu32
        self.piv = piv
        self.a = a
        #: slices whose complex64 cast was non-finite (never refined)
        self.bad_slices = frozenset(int(i) for i in bad_slices)
        self._zfacs: dict = {}

    @property
    def batch_size(self) -> int:
        return self.lu32.shape[0]

    @property
    def n(self) -> int:
        return self.lu32.shape[1]

    def take(self, idx) -> "MixedLUFactor":
        """Sub-batch along the energy axis (the backend's
        ``take_factor``): complex64 factors, residual operands,
        overflow bookkeeping, and cached double-precision fallback
        factors all follow the subset, renumbered to the new axis."""
        idx = [int(i) for i in np.asarray(idx, dtype=int)]
        sub = MixedLUFactor(
            self.lu32[idx], self.piv[idx], self.a[idx],
            [j for j, i in enumerate(idx) if i in self.bad_slices])
        for j, i in enumerate(idx):
            if i in self._zfacs:
                sub._zfacs[j] = self._zfacs[i]
        return sub

    def z_factor(self, i: int, tag: str = ""):
        """Double-precision factor of slice ``i`` (cached, recorded)."""
        fac = self._zfacs.get(i)
        if fac is None:
            t0 = time.perf_counter()
            try:
                fac = sla.lu_factor(self.a[i], check_finite=False)
            except (sla.LinAlgError, ValueError) as exc:
                raise SingularMatrixError(
                    f"double-precision fallback factorization failed "
                    f"for slice {i}: {exc}") from exc
            _record("zgetrf_batched", _fl.lu_flops(self.n, True),
                    2 * self.a[i].nbytes, t0,
                    f"{tag}|fallback" if tag else "fallback")
            self._zfacs[i] = fac
        return fac


class MixedPrecisionBackend(KernelBackend):
    """complex64 batched LU + iterative refinement to complex128.

    GEMM and adjoint run the reference double-precision kernels — the
    win targets the factor-dominated LU pipeline, and double-precision
    residual GEMMs are what make the refinement sound.  Real (float64)
    stacks take the reference path unchanged.

    Parameters
    ----------
    tol : per-slice relative-residual gate (default ``1e-10``, or the
        ``REPRO_MIXED_TOL`` environment variable).
    max_refine_iters : refinement sweeps before the double fallback.
    """

    def __init__(self, tol: float | None = None,
                 max_refine_iters: int = DEFAULT_MAX_REFINE_ITERS):
        if tol is None:
            tol = float(os.environ.get("REPRO_MIXED_TOL",
                                       DEFAULT_RESIDUAL_TOL))
        self.tol = float(tol)
        self.max_refine_iters = int(max_refine_iters)
        self.capabilities = BackendCapabilities(
            name="mixed",
            dtypes=("float64", "complex128"),
            native_batching=True,
            precision="mixed(c64+refinement)",
            deterministic=False,
            tolerance=self.tol,
            description="complex64 LU + iterative refinement, "
                        f"residual gate {self.tol:g}")
        self._lock = threading.Lock()
        self.stats = {"factor_calls": 0, "solve_calls": 0,
                      "refine_iterations": 0, "fallback_slices": 0,
                      "max_residual": 0.0}

    def reset_stats(self) -> None:
        with self._lock:
            for k in self.stats:
                self.stats[k] = 0.0 if k == "max_residual" else 0

    def _bump(self, **deltas) -> None:
        with self._lock:
            for k, v in deltas.items():
                if k == "max_residual":
                    self.stats[k] = max(self.stats[k], float(v))
                else:
                    self.stats[k] += v

    # -- delegated primitives ---------------------------------------------

    def gemm_batched(self, a, b, tag: str = "", out=None):
        from repro.linalg import batched as _b
        return _b._gemm_batched_impl(a, b, tag=tag, out=out)

    def adjoint_batched(self, a):
        from repro.linalg import batched as _b
        return _b._adjoint_batched_impl(a)

    def take_factor(self, fac, idx):
        if isinstance(fac, MixedLUFactor):
            return fac.take(idx)
        return super().take_factor(fac, idx)   # real stacks: (lu, piv)

    # -- mixed-precision factor -------------------------------------------

    def lu_factor_batched(self, a, tag: str = ""):
        a = np.asarray(a)
        _check_stack(a, "lu_factor_batched", square=True)
        if not np.iscomplexobj(a):
            from repro.linalg import batched as _b
            return _b._lu_factor_batched_impl(a, tag=tag)
        t0 = time.perf_counter()
        a = np.array(a, dtype=np.complex128, copy=True)   # residual copy
        ne, n = a.shape[0], a.shape[1]
        # cast into a stack whose slices are Fortran-contiguous: raw
        # cgetrf/cgetrs then factor IN PLACE with zero f2py copies —
        # SciPy's stacked lu_factor costs ~1.7x this bare LAPACK loop
        # at transport batch sizes
        with np.errstate(over="ignore", invalid="ignore"):
            lu32 = a.transpose(0, 2, 1).astype(
                np.complex64, order="C").transpose(0, 2, 1)
        finite = np.isfinite(lu32).all(axis=(1, 2))
        bad = np.nonzero(~finite)[0]
        if bad.size:
            # keep cgetrf away from inf/nan slices: factor the identity
            # there, and route those slices straight to the z fallback
            lu32[bad] = np.eye(n, dtype=np.complex64)[None]
        piv = np.empty((ne, n), dtype=np.int32)
        for i in range(ne):
            _, piv_i, info = _lap.cgetrf(lu32[i], overwrite_a=True)
            if info > 0:
                raise SingularMatrixError(
                    f"batched complex64 LU factorization failed: "
                    f"slice {i} singular at pivot {info}")
            if info < 0:
                raise SingularMatrixError(
                    f"batched complex64 LU factorization failed: "
                    f"cgetrf illegal argument {-info} on slice {i}")
            piv[i] = piv_i
        _record("cgetrf_batched", ne * _fl.lu_flops(n, True),
                2 * a.nbytes + 3 * lu32.nbytes, t0, tag)
        self._bump(factor_calls=1)
        tracer = current_tracer()
        if tracer is not None:
            # live fallback-rate detector input: slices factored in c64
            tracer.metrics.counter("mixed_factor_slices").inc(int(ne))
        return MixedLUFactor(lu32, piv, a, bad)

    # -- refined solves ----------------------------------------------------

    def _c64_sweep(self, fac: MixedLUFactor, rhs_rows, fac_indices,
                   tag: str):
        """One low-precision triangular-solve sweep.

        ``rhs_rows`` is a ``(na, n, nrhs)`` complex128 stack whose row
        ``j`` belongs to factor slice ``fac_indices[j]``.  Casts down,
        back-substitutes through the complex64 factors (raw ``cgetrs``
        per slice — measurably faster than SciPy's stacked
        ``lu_solve`` on small batches), returns the complex128 result.
        One ``cgetrs_batched`` record for the whole sweep.
        """
        t0 = time.perf_counter()
        na, n, nrhs = rhs_rows.shape
        rhs32 = rhs_rows.astype(np.complex64)
        x32 = np.empty_like(rhs32)
        for j, i in enumerate(fac_indices):
            x32[j], info = _lap.cgetrs(fac.lu32[i], fac.piv[i], rhs32[j])
            if info != 0:
                raise SingularMatrixError(
                    f"cgetrs failed on slice {int(i)} (info={info})")
        _record("cgetrs_batched", na * 2 * _fl.trsm_flops(n, nrhs, True),
                rhs32.nbytes + x32.nbytes, t0, tag)
        return x32.astype(np.complex128)

    def _residual(self, fac: MixedLUFactor, b, x, indices, tag: str):
        """r = b - A x on ``indices``; one zgemm record (the reference
        GEMM discipline: bytes of the three stacks touched)."""
        t0 = time.perf_counter()
        if len(indices) == fac.batch_size:
            # all slices active: index with views, not fancy-index
            # copies of the full A stack (tens of MB per sweep)
            a_act, x_act, b_act = fac.a, x, b
        else:
            a_act, x_act, b_act = fac.a[indices], x[indices], b[indices]
        ax = np.matmul(a_act, x_act)
        r = b_act - ax
        na, n, nrhs = ax.shape
        _record("zgemm_batched", na * _fl.gemm_flops(n, nrhs, n, True),
                a_act.nbytes + x_act.nbytes + ax.nbytes, t0,
                f"{tag}|residual" if tag else "residual")
        return r

    def lu_solve_batched(self, fac, b, tag: str = ""):
        if not isinstance(fac, MixedLUFactor):
            from repro.linalg import batched as _b
            return _b._lu_solve_batched_impl(fac, b, tag=tag)
        b = np.asarray(b)
        _check_stack(b, "lu_solve_batched")
        b = b.astype(np.complex128, copy=False)
        ne = fac.batch_size
        bnorm = np.linalg.norm(b.reshape(ne, -1), axis=1)
        denom = np.where(bnorm > 0.0, bnorm, 1.0)

        x = np.zeros(b.shape, dtype=np.complex128)
        active = np.array(sorted(set(range(ne)) - fac.bad_slices),
                          dtype=int)
        if active.size:
            x[active] = self._c64_sweep(fac, b[active], active, tag)

        refine_iters = 0
        max_rel = 0.0
        for sweep in range(self.max_refine_iters + 1):
            if not active.size:
                break
            r = self._residual(fac, b, x, active, tag)
            rel = (np.linalg.norm(r.reshape(len(active), -1), axis=1)
                   / denom[active])
            rel = np.where(np.isfinite(rel), rel, np.inf)
            keep = rel > self.tol
            if (~keep).any():
                max_rel = max(max_rel, float(rel[~keep].max()))
            active = active[keep]
            if not active.size or sweep == self.max_refine_iters:
                break
            d = self._c64_sweep(fac, r[keep], active, tag)
            x[active] = x[active] + d
            refine_iters += 1

        failed = sorted(set(active.tolist()) | fac.bad_slices)
        for i in failed:
            zfac = fac.z_factor(int(i), tag)
            t0 = time.perf_counter()
            x[i] = sla.lu_solve(zfac, b[i], check_finite=False)
            n, nrhs = b.shape[1], b.shape[2]
            _record("zgetrs_batched", 2 * _fl.trsm_flops(n, nrhs, True),
                    2 * b[i].nbytes, t0,
                    f"{tag}|fallback" if tag else "fallback")
        self._bump(solve_calls=1, refine_iterations=refine_iters,
                   fallback_slices=len(failed), max_residual=max_rel)
        if failed:
            tracer = current_tracer()
            if tracer is not None:
                tracer.metrics.counter("mixed_fallback_slices").inc(
                    len(failed))
        return x

    def solve_batched(self, a, b, tag: str = ""):
        a = np.asarray(a)
        b = np.asarray(b)
        if not (np.iscomplexobj(a) or np.iscomplexobj(b)):
            from repro.linalg import batched as _b
            return _b._solve_batched_impl(a, b, tag=tag)
        _check_stack(a, "solve_batched", square=True)
        _check_stack(b, "solve_batched")
        fac = self.lu_factor_batched(a, tag=tag)
        return self.lu_solve_batched(
            fac, b.astype(np.complex128, copy=False), tag=tag)
