"""Workspace arenas: reusable scratch buffers for the batched solve path.

The data-centric OMEN follow-ups (Ziogas et al.) make memory traffic a
first-class quantity; the first step is to stop *generating* avoidable
traffic.  The batched kernels allocate fresh ``(nE, n, n)`` stacks every
energy batch — Schur complements, rhs carries, concatenation staging,
sigma stacks — even though a steady-state energy sweep solves thousands
of identically-shaped batches.  A :class:`Workspace` is a dtype/shape-
bucketed pool of those buffers with explicit checkout/release semantics:
after the first (warm-up) batch every subsequent batch is served from
the pool, so steady state performs **zero** large new allocations in the
arena-managed paths (asserted by the allocation-count telemetry in
:meth:`Workspace.stats`).

Correctness over convenience:

* releasing an array the workspace never handed out (or releasing it
  twice) raises :class:`~repro.utils.errors.ArenaError`;
* releasing a *view* into a checked-out buffer raises
  :class:`~repro.utils.errors.ArenaAliasError` — pooled buffers must be
  whole, never aliased slices;
* buffers come back from the pool with stale contents by default;
  callers that need zeroed memory declare it (``zero=True``) and the
  optional ``poison`` debug mode NaN-fills buffers on release so any
  read-before-overwrite bug surfaces immediately;
* results that outlive the batch (``psi``, injection rhs) are checked
  out with ``escape=True``: the allocation is counted in the telemetry
  but the buffer is never pooled, so downstream holders (density,
  current, cached boundaries) can never be corrupted by reuse.

Scope plumbing mirrors the thread-local ledger idiom of
:mod:`repro.linalg.flops`: :func:`arena_scope` installs a workspace for
the current thread, :func:`scratch` / :func:`scratch_release` are the
call-site helpers that degrade to plain ``np.empty``/no-op when no arena
is active — the arena-off path allocates exactly what it always did.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

from repro.utils.errors import ArenaAliasError, ArenaError, ArenaLeakError


class Workspace:
    """A (shape, dtype)-bucketed scratch-buffer arena.

    Parameters
    ----------
    name : str
        Label used in error messages and telemetry.
    poison : bool
        Debug mode: NaN-fill inexact buffers on release so stale reads
        of pooled memory fail loudly instead of silently reusing data.
    """

    def __init__(self, name: str = "workspace", poison: bool = False):
        self.name = str(name)
        self.poison = bool(poison)
        self._lock = threading.RLock()
        self._pool: dict = {}          # (shape, dtype.str) -> [ndarray]
        self._outstanding: dict = {}   # id(arr) -> (arr, tag)
        self.fresh = 0                 # checkouts served by np.empty
        self.reuses = 0                # checkouts served from the pool
        self.escaped = 0               # escape checkouts (never pooled)
        self.released = 0
        self.bytes_fresh = 0           # cumulative newly-allocated bytes
        self.bytes_pooled = 0          # bytes currently parked in the pool

    # -- lifecycle -----------------------------------------------------------

    def checkout(self, shape, dtype=complex, *, zero: bool = False,
                 escape: bool = False, tag: str = "") -> np.ndarray:
        """Hand out a buffer of ``shape``/``dtype``.

        ``zero=True`` guarantees zeroed contents (pool hits are re-zeroed);
        otherwise contents are undefined and the caller must overwrite.
        ``escape=True`` marks a buffer that outlives the batch: it is
        always freshly allocated, never tracked, never pooled — only
        counted, so the telemetry still attributes the allocation.
        """
        shape = tuple(int(s) for s in shape)
        dt = np.dtype(dtype)
        if escape:
            with self._lock:
                self.escaped += 1
            return np.zeros(shape, dt) if zero else np.empty(shape, dt)
        with self._lock:
            bucket = self._pool.get((shape, dt.str))
            if bucket:
                arr = bucket.pop()
                self.reuses += 1
                self.bytes_pooled -= arr.nbytes
            else:
                arr = np.empty(shape, dt)
                self.fresh += 1
                self.bytes_fresh += arr.nbytes
            self._outstanding[id(arr)] = (arr, str(tag))
        if zero:
            arr.fill(0)
        return arr

    def release(self, arr: np.ndarray) -> None:
        """Return a checked-out buffer to the pool.

        Only the exact object handed out by :meth:`checkout` is
        accepted; views into checked-out buffers raise
        :class:`ArenaAliasError`, anything else (double release, foreign
        array) raises :class:`ArenaError`.
        """
        if not isinstance(arr, np.ndarray):
            raise ArenaError(
                f"{self.name}: release expects an ndarray, got "
                f"{type(arr).__name__}")
        with self._lock:
            entry = self._outstanding.get(id(arr))
            if entry is None or entry[0] is not arr:
                for held, tag in self._outstanding.values():
                    if held is not arr and np.shares_memory(arr, held):
                        raise ArenaAliasError(
                            f"{self.name}: released array aliases the "
                            f"checked-out buffer {held.shape} "
                            f"(tag {tag!r}); release the whole buffer, "
                            f"not a view")
                raise ArenaError(
                    f"{self.name}: array {arr.shape} was not checked "
                    f"out here (double release or foreign array)")
            del self._outstanding[id(arr)]
            if self.poison and np.issubdtype(arr.dtype, np.inexact):
                arr.fill(np.nan)
            self._pool.setdefault((arr.shape, arr.dtype.str),
                                  []).append(arr)
            self.bytes_pooled += arr.nbytes
            self.released += 1

    def assert_quiescent(self) -> None:
        """Raise :class:`ArenaLeakError` if any buffer is still out."""
        with self._lock:
            if self._outstanding:
                held = ", ".join(
                    f"{a.shape}:{t or '?'}"
                    for a, t in self._outstanding.values())
                raise ArenaLeakError(
                    f"{self.name}: {len(self._outstanding)} buffer(s) "
                    f"still checked out: {held}")

    def close(self) -> None:
        """Leak-check, then drop every pooled buffer."""
        self.assert_quiescent()
        with self._lock:
            self._pool.clear()
            self.bytes_pooled = 0

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    # -- telemetry -----------------------------------------------------------

    @property
    def outstanding(self) -> int:
        with self._lock:
            return len(self._outstanding)

    def stats(self) -> dict:
        """Allocation-count telemetry (JSON-serializable).

        ``fresh`` is the number of checkouts that had to allocate — in
        steady state it stops growing, which is exactly the zero-new-
        allocations acceptance criterion; ``reuse_rate`` is the pooled
        fraction of all non-escape checkouts.
        """
        with self._lock:
            total = self.fresh + self.reuses
            return {
                "name": self.name,
                "fresh": int(self.fresh),
                "reuses": int(self.reuses),
                "escaped": int(self.escaped),
                "released": int(self.released),
                "outstanding": len(self._outstanding),
                "bytes_fresh": int(self.bytes_fresh),
                "bytes_pooled": int(self.bytes_pooled),
                "buckets": len(self._pool),
                "reuse_rate": (self.reuses / total) if total else 0.0,
            }


# --------------------------------------------------------------------------
# Thread-local active-arena plumbing (the ledger_scope idiom)
# --------------------------------------------------------------------------

_tls = threading.local()


def current_arena() -> Workspace | None:
    """The workspace :func:`scratch` draws from, or ``None``."""
    stack = getattr(_tls, "stack", None)
    if stack:
        return stack[-1]
    return None


@contextmanager
def arena_scope(workspace: Workspace):
    """Route :func:`scratch` calls in this thread into ``workspace``."""
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    stack.append(workspace)
    try:
        yield workspace
    finally:
        stack.pop()


def scratch(shape, dtype=complex, *, zero: bool = False,
            escape: bool = False, tag: str = "") -> np.ndarray:
    """Checkout from the active arena, or plain-allocate without one.

    The no-arena fallback is exactly the allocation the call site would
    otherwise perform (``np.zeros`` / ``np.empty``), so instrumented
    code paths are bitwise unchanged when no workspace is installed.
    """
    ws = current_arena()
    if ws is None:
        dt = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        return np.zeros(shape, dt) if zero else np.empty(shape, dt)
    return ws.checkout(shape, dtype, zero=zero, escape=escape, tag=tag)


def scratch_release(*arrays) -> None:
    """Release buffers back to the active arena (no-op without one)."""
    ws = current_arena()
    if ws is None:
        return
    for a in arrays:
        ws.release(a)
