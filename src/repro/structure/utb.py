"""Ultra-thin-body silicon film generator (Fig. 1c of the paper).

The double-gate UTBFET channel is a silicon slab of thickness ``tbody``
confined in y, periodic in z (out-of-plane), with transport along x.  The
z-periodicity is what introduces the electron momentum k that OMEN
parallelizes over (21 k-points in the paper's scaling runs).
"""

from __future__ import annotations

import numpy as np

from repro.structure.lattice import (
    SI_LATTICE_CONSTANT,
    Structure,
    diamond_conventional_cell,
    replicate,
)
from repro.utils.errors import ConfigurationError


def silicon_utb_film(tbody_nm: float, length_cells: int,
                     width_cells: int = 1,
                     a0: float = SI_LATTICE_CONSTANT) -> Structure:
    """Build a (100) Si ultra-thin-body film.

    Parameters
    ----------
    tbody_nm : float
        Body thickness (confinement direction y).  Paper: 5 nm.
    length_cells : int
        Conventional cells along transport (x).
    width_cells : int
        Periodic repetitions along z kept explicit in the structure; the
        electronic k-dependence along z is handled in
        :mod:`repro.hamiltonian.kspace`, so 1 is the usual choice.

    Returns
    -------
    Structure with ``periodic = [True, False, True]``.
    """
    if tbody_nm <= 0:
        raise ConfigurationError("tbody_nm must be positive")
    if length_cells < 1 or width_cells < 1:
        raise ConfigurationError("length_cells and width_cells must be >= 1")

    nlayers = int(np.ceil(tbody_nm / a0)) + 1
    bulk = replicate(diamond_conventional_cell(a0), length_cells,
                     nlayers, width_cells)
    pos = bulk.positions
    y = pos[:, 1]
    y0 = (y.max() + y.min()) / 2.0
    keep = np.abs(y - y0) <= tbody_nm / 2.0
    film = bulk.select(keep)
    film.periodic = np.array([True, False, True])
    film.cell = np.diag([length_cells * a0, tbody_nm, width_cells * a0])
    film.positions[:, 0] -= film.positions[:, 0].min()
    return film


def utb_atom_count_estimate(tbody_nm: float, length_nm: float,
                            width_nm: float,
                            a0: float = SI_LATTICE_CONSTANT) -> int:
    """Analytic atom count for the paper-scale performance model."""
    density = 8.0 / a0 ** 3
    return int(round(density * tbody_nm * length_nm * width_nm))
