"""Transport-slab partitioning.

OMEN's solvers require the Hamiltonian ordered so that coupling only links
adjacent blocks (Fig. 4).  Atoms are binned into slabs of equal width along
the transport axis x; with slab width >= the interaction cutoff the
resulting H/S are block tridiagonal (NBW = 1 after the supercell folding in
:mod:`repro.hamiltonian.folding`).
"""

from __future__ import annotations

import numpy as np

from repro.structure.lattice import Structure
from repro.utils.errors import ConfigurationError


def assign_slabs(structure: Structure, num_slabs: int,
                 axis: int = 0) -> np.ndarray:
    """Assign each atom a slab index 0..num_slabs-1 by position.

    Slab boundaries are equally spaced over the *cell* extent along the
    axis (not the atom bounding box): a lead unit cell of a periodic
    structure then maps to a whole number of slabs regardless of where its
    atoms sit inside the cell.
    """
    if num_slabs < 1:
        raise ConfigurationError("num_slabs must be >= 1")
    x = structure.positions[:, axis]
    length = structure.cell[axis, axis]
    if length <= 0:
        raise ConfigurationError("cell has non-positive transport extent")
    width = length / num_slabs
    # Lattice atoms sit exactly on slab boundaries (x = i * a); a tiny
    # epsilon keeps them in slab i despite round-off in i*a vs i*width.
    eps = 1e-9 * width
    idx = np.floor((x + eps) / width).astype(int)
    return np.clip(idx, 0, num_slabs - 1)


def order_by_slab(structure: Structure, slab_index: np.ndarray):
    """Return ``(reordered_structure, permutation, sorted_slab_index)``.

    The permutation is stable within a slab (ties keep input order) so the
    lead unit cells remain internally identically ordered — without this,
    the H blocks of successive lead cells would differ by a permutation and
    the OBC solver would reject them.
    """
    slab_index = np.asarray(slab_index)
    if slab_index.shape != (structure.num_atoms,):
        raise ConfigurationError("slab_index length must match atom count")
    perm = np.argsort(slab_index, kind="stable")
    ordered = Structure(structure.positions[perm], structure.species[perm],
                        structure.cell.copy(), structure.periodic.copy())
    return ordered, perm, slab_index[perm]


def slab_atom_counts(slab_index: np.ndarray, num_slabs: int) -> np.ndarray:
    """Atoms per slab; these become block sizes (x orbitals/atom)."""
    return np.bincount(np.asarray(slab_index), minlength=num_slabs)


def validate_slab_locality(structure: Structure, slab_index: np.ndarray,
                           cutoff: float, axis: int = 0) -> bool:
    """Check that no interaction pair spans more than one slab boundary.

    True iff |slab_i - slab_j| <= 1 for every pair within ``cutoff`` —
    i.e. the partitioning really produces a block-tridiagonal matrix.
    """
    pairs, _ = structure.neighbor_pairs(cutoff)
    if len(pairs) == 0:
        return True
    si = slab_index[pairs[:, 0]]
    sj = slab_index[pairs[:, 1]]
    return bool(np.all(np.abs(si - sj) <= 1))
