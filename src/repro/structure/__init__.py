"""Atomistic structure generators.

In the paper, device geometries (gate-all-around nanowires, ultra-thin-body
films, lithiated SnO anodes) are constructed and relaxed by CP2K.  Here the
same classes of structures are generated directly: atoms on a diamond
lattice carved into wires/films, ordered into transport slabs so the
resulting Hamiltonian is block tridiagonal.
"""

from repro.structure.lattice import (
    Structure,
    diamond_conventional_cell,
    replicate,
    SI_LATTICE_CONSTANT,
)
from repro.structure.nanowire import silicon_nanowire
from repro.structure.utb import silicon_utb_film
from repro.structure.chain import linear_chain, dimer_chain
from repro.structure.anode import lithiated_sno_anode
from repro.structure.slabs import (
    assign_slabs,
    order_by_slab,
    slab_atom_counts,
)

__all__ = [
    "Structure",
    "diamond_conventional_cell",
    "replicate",
    "SI_LATTICE_CONSTANT",
    "silicon_nanowire",
    "silicon_utb_film",
    "linear_chain",
    "dimer_chain",
    "lithiated_sno_anode",
    "assign_slabs",
    "order_by_slab",
    "slab_atom_counts",
]
