"""Synthetic lithiated tin-oxide (SnO) battery-anode structures.

Substitution note (see DESIGN.md): the paper's SnO anode geometries come
from DFT lithiation studies [Pedersen & Luisier 2014] with measured volume
expansion [Ebner et al. 2013].  Neither the relaxed geometries nor the
experimental tomography data are available, so this module generates the
closest synthetic equivalent: a crystalline Sn/O rock-salt-like matrix in
which a lithiation fraction of interstitial Li is inserted with positional
disorder, and whose cell expands with capacity following the paper's
Fig. 1(e) trend (linear volume expansion up to ~150 % at ~1000 mAh/g).
The transport code only depends on geometry + species, which this
preserves: a disordered multi-species structure with a central low-
conductivity Li-oxide region (Fig. 1(f): "current flow through the central
Li-oxide is insignificant").
"""

from __future__ import annotations

import numpy as np

from repro.structure.lattice import Structure
from repro.utils.errors import ConfigurationError
from repro.utils.rng import make_rng

#: Gravimetric capacity (mAh/g) at which x_Li = 1 per SnO formula unit.
CAPACITY_PER_LI = 199.0  # F/(3.6*M_SnO) with M_SnO = 134.7 g/mol

#: Fractional volume expansion per unit Li fraction (fit to Fig. 1e trend).
EXPANSION_SLOPE = 0.26


def lithiation_fraction(capacity_mah_g: float) -> float:
    """Li atoms per SnO formula unit at a given capacity."""
    if capacity_mah_g < 0:
        raise ConfigurationError("capacity must be non-negative")
    return capacity_mah_g / CAPACITY_PER_LI


def volume_expansion(capacity_mah_g: float) -> float:
    """Relative volume change V/V0 - 1 (Fig. 1e reproduction).

    Linear in Li content, matching both the measured tomography curve and
    the simulated points of the paper up to C ~ 1000 mAh/g.
    """
    return EXPANSION_SLOPE * lithiation_fraction(capacity_mah_g)


def lithiated_sno_anode(capacity_mah_g: float = 1000.0,
                        cells_x: int = 6, cells_yz: int = 2,
                        a0: float = 0.48, disorder: float = 0.03,
                        li_blockade_span: tuple = (0.4, 0.6),
                        contact_cells: int = 2,
                        seed=None) -> Structure:
    """Generate a lithiated SnO anode slab.

    Parameters
    ----------
    capacity_mah_g : float
        State of charge; sets Li content and volume expansion.
    cells_x, cells_yz : int
        Rock-salt cells along transport / confinement.
    disorder : float
        RMS random displacement (nm) applied to all atoms — lithiation is
        amorphizing in the paper's samples.
    li_blockade_span : (float, float)
        Fractional x-range where Li concentrates, forming the central
        Li-oxide region through which current barely flows (Fig. 1f).
    contact_cells : int
        Crystalline (disorder- and Li-free) cells at each end; the
        transport setup needs NBW + 2 identical contact cells.
    """
    rng = make_rng(seed)
    x_li = lithiation_fraction(capacity_mah_g)
    a = a0 * (1.0 + volume_expansion(capacity_mah_g)) ** (1.0 / 3.0)

    # Rock-salt-like ordering along the transport axis: alternating
    # Sn-O-Sn-O chains (spacing a/2) bundled on a square transverse
    # lattice — the conducting Sn-O backbone of the electrode.
    pos, kinds = [], []
    for i in range(cells_x):
        for j in range(cells_yz):
            for k in range(cells_yz):
                base = np.array([i, j, k], dtype=float) * a
                pos.append(base)
                kinds.append("Sn")
                pos.append(base + [a / 2.0, 0.0, 0.0])
                kinds.append("O")
    pos = np.asarray(pos)
    kinds = np.asarray(kinds)

    # Insert interstitial Li, concentrated in the blockade span.
    n_fu = cells_x * cells_yz * cells_yz
    n_li = int(round(min(x_li, 4.4) * n_fu))
    lx = cells_x * a
    lo, hi = li_blockade_span
    # keep Li out of the crystalline contact buffers
    lo = max(lo, contact_cells / cells_x)
    hi = min(hi, 1.0 - contact_cells / cells_x)
    if hi <= lo:
        raise ConfigurationError(
            "li_blockade_span lies inside the contact buffers; "
            "increase cells_x or shrink contact_cells")
    if n_li:
        li_x = rng.uniform(lo * lx, hi * lx, size=n_li)
        li_yz = rng.uniform(0.1 * a, (cells_yz - 0.1) * a, size=(n_li, 2))
        li_pos = np.column_stack([li_x, li_yz])
        pos = np.vstack([pos, li_pos])
        kinds = np.concatenate([kinds, np.array(["Li"] * n_li)])

    # Amorphize, but keep the contact buffers crystalline: the leads must
    # stay translationally periodic (the paper attaches ideal contacts
    # too).  The lattice origin is preserved so slab boundaries stay
    # aligned with the crystal cells.
    ideal = pos.copy()
    pos = pos + rng.normal(scale=disorder, size=pos.shape)
    # ... including the lattice atoms sitting exactly on the buffer's
    # inner boundary, which would otherwise jitter across the slab edge.
    edge = (ideal[:, 0] < contact_cells * a + 1e-9) \
        | (ideal[:, 0] > (cells_x - contact_cells) * a - 1e-9)
    pos[edge] = ideal[edge]

    cell = np.diag([cells_x * a, cells_yz * a, cells_yz * a])
    return Structure(pos, kinds, cell, np.array([True, False, False]))
