"""Gate-all-around silicon nanowire generator (Fig. 1a of the paper).

A cylinder of diameter ``d`` is carved out of bulk diamond-lattice silicon,
with the wire axis along the <100> transport direction (x).  Surface atoms
with fewer than two bulk neighbours are pruned, mimicking the removal of
singly-coordinated atoms before hydrogen passivation in the paper's CP2K
structure preparation.
"""

from __future__ import annotations

import numpy as np

from repro.structure.lattice import (
    SI_LATTICE_CONSTANT,
    Structure,
    diamond_conventional_cell,
    replicate,
)
from repro.utils.errors import ConfigurationError


def silicon_nanowire(diameter_nm: float, length_cells: int,
                     a0: float = SI_LATTICE_CONSTANT,
                     prune_undercoordinated: bool = True) -> Structure:
    """Build a <100> Si nanowire.

    Parameters
    ----------
    diameter_nm : float
        Wire diameter (confinement in y and z).  The paper's large run uses
        d = 3.2 nm; tests use ~1 nm.
    length_cells : int
        Number of conventional cells (each ``a0`` long) along transport x.
        The lead unit cell of the transport problem is one such cell.
    prune_undercoordinated : bool
        Remove surface atoms with < 2 covalent neighbours (they would form
        unphysical dangling chains and spoil the bandgap).

    Returns
    -------
    Structure with ``periodic = [True, False, False]`` — the x periodicity
    refers to the lead continuation, matching the device setup of Eq. (5).
    """
    if diameter_nm <= 0:
        raise ConfigurationError("diameter_nm must be positive")
    if length_cells < 1:
        raise ConfigurationError("length_cells must be >= 1")

    ncross = int(np.ceil(diameter_nm / a0)) + 1
    bulk = replicate(diamond_conventional_cell(a0), length_cells,
                     ncross, ncross)

    # Center the cross-section and carve the cylinder.
    pos = bulk.positions
    yz = pos[:, 1:]
    center = (yz.max(axis=0) + yz.min(axis=0)) / 2.0
    r2 = ((yz - center) ** 2).sum(axis=1)
    keep = r2 <= (diameter_nm / 2.0) ** 2
    wire = bulk.select(keep)

    if prune_undercoordinated and wire.num_atoms:
        wire = _prune(wire, a0, length_cells)

    wire.periodic = np.array([True, False, False])
    wire.cell = np.diag([length_cells * a0, diameter_nm, diameter_nm])
    # Shift so the wire starts at x=0 exactly (lead alignment).
    wire.positions[:, 0] -= wire.positions[:, 0].min()
    return wire


def _prune(wire: Structure, a0: float, length_cells: int) -> Structure:
    """Iteratively remove atoms with < 2 bonded neighbours.

    Coordination is counted with x-periodic images so lead unit cells stay
    translationally identical (critical: OMEN requires every lead cell to
    produce the same H blocks).
    """
    # Nearest-neighbour bond length in diamond is sqrt(3)/4 * a0.
    bond_cutoff = np.sqrt(3.0) / 4.0 * a0 * 1.15
    lx = length_cells * a0
    while True:
        # Append periodic x-images of boundary atoms for coordination count.
        pos = wire.positions
        left = pos[:, 0] < bond_cutoff
        right = pos[:, 0] > pos[:, 0].max() - bond_cutoff
        ghost = np.vstack([pos[right] - [lx, 0, 0], pos[left] + [lx, 0, 0]])
        all_pos = np.vstack([pos, ghost])
        tmp = Structure(all_pos, np.array(["Si"] * len(all_pos)),
                        wire.cell, wire.periodic)
        pairs, _ = tmp.neighbor_pairs(bond_cutoff)
        coord = np.zeros(len(all_pos), dtype=int)
        for i, j in pairs:
            coord[i] += 1
            coord[j] += 1
        keep = coord[: wire.num_atoms] >= 2
        if keep.all() or not keep.any():
            return wire
        wire = wire.select(keep)


def nanowire_atom_count_estimate(diameter_nm: float, length_nm: float,
                                 a0: float = SI_LATTICE_CONSTANT) -> int:
    """Analytic estimate of the atom count of a <100> Si nanowire.

    Used by the paper-scale performance model where building the real
    55 488-atom structure would be wasteful: density 8/a0^3 times the
    cylinder volume.
    """
    density = 8.0 / a0 ** 3
    volume = np.pi / 4.0 * diameter_nm ** 2 * length_nm
    return int(round(density * volume))
