"""Crystal-lattice primitives and the :class:`Structure` container.

Lengths are in nanometres throughout the package; energies in eV.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.errors import ConfigurationError, ShapeError

#: Silicon lattice constant in nm (diamond cubic).
SI_LATTICE_CONSTANT = 0.5431


@dataclass
class Structure:
    """A collection of atoms with a (possibly periodic) cell.

    Attributes
    ----------
    positions : (N, 3) float array, nm.
    species : (N,) array of str chemical symbols.
    cell : (3, 3) float array; row i is lattice vector a_i (nm).  For
        non-periodic directions the row is a bounding-box extent.
    periodic : (3,) bool array; which directions are periodic.  Transport
        is always along axis 0 (x), matching the paper's convention.
    """

    positions: np.ndarray
    species: np.ndarray
    cell: np.ndarray
    periodic: np.ndarray = field(
        default_factory=lambda: np.array([False, False, False]))

    def __post_init__(self):
        self.positions = np.atleast_2d(np.asarray(self.positions, dtype=float))
        self.species = np.asarray(self.species)
        self.cell = np.asarray(self.cell, dtype=float)
        self.periodic = np.asarray(self.periodic, dtype=bool)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ShapeError(
                f"positions must be (N, 3), got {self.positions.shape}")
        if self.species.shape != (self.positions.shape[0],):
            raise ShapeError("species length must match number of atoms")
        if self.cell.shape != (3, 3):
            raise ShapeError(f"cell must be (3, 3), got {self.cell.shape}")
        if self.periodic.shape != (3,):
            raise ShapeError("periodic must have 3 entries")

    @property
    def num_atoms(self) -> int:
        return self.positions.shape[0]

    @property
    def extent(self) -> np.ndarray:
        """Axis-aligned bounding-box size (nm), ignoring periodicity."""
        if self.num_atoms == 0:
            return np.zeros(3)
        return self.positions.max(axis=0) - self.positions.min(axis=0)

    def unique_species(self):
        return sorted(set(self.species.tolist()))

    def select(self, mask) -> "Structure":
        """Sub-structure of the atoms where ``mask`` is true."""
        mask = np.asarray(mask)
        return Structure(self.positions[mask], self.species[mask],
                         self.cell.copy(), self.periodic.copy())

    def translated(self, shift) -> "Structure":
        return Structure(self.positions + np.asarray(shift, dtype=float),
                         self.species.copy(), self.cell.copy(),
                         self.periodic.copy())

    def concatenate(self, other: "Structure") -> "Structure":
        """Merge two structures (cell/periodicity taken from ``self``)."""
        return Structure(
            np.vstack([self.positions, other.positions]),
            np.concatenate([self.species, other.species]),
            self.cell.copy(), self.periodic.copy())

    def neighbor_pairs(self, cutoff: float):
        """All pairs (i, j), i < j, with |r_i - r_j| <= cutoff (non-periodic).

        Uses a uniform spatial grid so cost is O(N) for bounded density —
        essential for the 10^4-atom structures of the paper.
        Returns ``(pairs, deltas)`` where deltas[k] = r_j - r_i.
        """
        pos = self.positions
        n = self.num_atoms
        if n < 2:
            return np.zeros((0, 2), dtype=int), np.zeros((0, 3))
        inv_h = 1.0 / max(cutoff, 1e-12)
        keys = np.floor(pos * inv_h).astype(np.int64)
        cellmap: dict[tuple, list] = {}
        for i, k in enumerate(map(tuple, keys)):
            cellmap.setdefault(k, []).append(i)
        pairs, deltas = [], []
        offsets = [(dx, dy, dz) for dx in (-1, 0, 1)
                   for dy in (-1, 0, 1) for dz in (-1, 0, 1)]
        cut2 = cutoff * cutoff
        for key, members in cellmap.items():
            neigh = []
            for off in offsets:
                other = (key[0] + off[0], key[1] + off[1], key[2] + off[2])
                neigh.extend(cellmap.get(other, ()))
            neigh = np.asarray(neigh)
            for i in members:
                cand = neigh[neigh > i]
                if cand.size == 0:
                    continue
                d = pos[cand] - pos[i]
                keep = np.einsum("ij,ij->i", d, d) <= cut2
                for j, dj in zip(cand[keep], d[keep]):
                    pairs.append((i, j))
                    deltas.append(dj)
        if not pairs:
            return np.zeros((0, 2), dtype=int), np.zeros((0, 3))
        return np.asarray(pairs, dtype=int), np.asarray(deltas)

    def __repr__(self):
        return (f"Structure(N={self.num_atoms}, "
                f"species={self.unique_species()}, "
                f"periodic={self.periodic.tolist()})")


def diamond_conventional_cell(a0: float = SI_LATTICE_CONSTANT,
                              species: str = "Si") -> Structure:
    """The 8-atom conventional cubic cell of the diamond lattice."""
    frac = np.array([
        [0.00, 0.00, 0.00],
        [0.50, 0.50, 0.00],
        [0.50, 0.00, 0.50],
        [0.00, 0.50, 0.50],
        [0.25, 0.25, 0.25],
        [0.75, 0.75, 0.25],
        [0.75, 0.25, 0.75],
        [0.25, 0.75, 0.75],
    ])
    cell = np.eye(3) * a0
    return Structure(frac * a0, np.array([species] * 8), cell,
                     np.array([True, True, True]))


def replicate(unit: Structure, nx: int, ny: int, nz: int) -> Structure:
    """Tile a periodic unit cell nx x ny x nz times along its cell vectors."""
    for n, name in ((nx, "nx"), (ny, "ny"), (nz, "nz")):
        if n < 1:
            raise ConfigurationError(f"{name} must be >= 1, got {n}")
    shifts = np.array([[i, j, k] for i in range(nx)
                       for j in range(ny) for k in range(nz)], dtype=float)
    shifts = shifts @ unit.cell
    positions = (unit.positions[None, :, :] + shifts[:, None, :]).reshape(-1, 3)
    species = np.tile(unit.species, len(shifts))
    cell = unit.cell * np.array([[nx], [ny], [nz]])
    return Structure(positions, species, cell, unit.periodic.copy())
