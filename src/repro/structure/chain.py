"""One-dimensional atomic chains.

These are the analytically solvable systems the test-suite anchors on: a
single-orbital linear chain has the textbook dispersion
``E(k) = eps + 2 t cos(k a)`` and unit transmission inside the band, which
pins down sign and normalization conventions in the OBC and transport
codes.
"""

from __future__ import annotations

import numpy as np

from repro.structure.lattice import Structure
from repro.utils.errors import ConfigurationError


def linear_chain(num_atoms: int, spacing_nm: float = 0.25,
                 species: str = "X") -> Structure:
    """A chain of equally spaced atoms along x."""
    if num_atoms < 1:
        raise ConfigurationError("num_atoms must be >= 1")
    pos = np.zeros((num_atoms, 3))
    pos[:, 0] = np.arange(num_atoms) * spacing_nm
    cell = np.diag([num_atoms * spacing_nm, spacing_nm, spacing_nm])
    return Structure(pos, np.array([species] * num_atoms), cell,
                     np.array([True, False, False]))


def dimer_chain(num_cells: int, spacing_nm: float = 0.25,
                dimerization: float = 0.0,
                species=("A", "B")) -> Structure:
    """A two-atom-basis chain (SSH-like when ``dimerization`` != 0).

    Each cell holds atoms at x = 0 and x = (0.5 + dimerization) * a within
    the cell; alternating species allow onsite asymmetry (gapped leads).
    """
    if num_cells < 1:
        raise ConfigurationError("num_cells must be >= 1")
    if not -0.4 < dimerization < 0.4:
        raise ConfigurationError("dimerization must be in (-0.4, 0.4)")
    a = spacing_nm
    pos = []
    kinds = []
    for c in range(num_cells):
        pos.append([c * a, 0.0, 0.0])
        pos.append([(c + 0.5 + dimerization) * a, 0.0, 0.0])
        kinds.extend(species)
    cell = np.diag([num_cells * a, a, a])
    return Structure(np.asarray(pos), np.asarray(kinds), cell,
                     np.array([True, False, False]))
