"""Built-in solver registrations for the transport pipeline.

Each adapter solves ``(A - Sigma^RB) psi = Inj`` — the SOLVE stage
contract ``fn(a, ob, inj, *, num_partitions=1, parallel=False,
info=None) -> psi`` — and is registered in
:data:`repro.pipeline.registry.SOLVERS` under the names of the paper's
Fig. 8 comparison.  ``info`` (when a dict is passed) receives solver
diagnostics that end up on the SOLVE :class:`~repro.pipeline.StageTrace`.
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.registry import register_solver
from repro.solvers.assemble import assemble_t
from repro.solvers.bcr import solve_bcr
from repro.solvers.direct import solve_direct
from repro.solvers.rgf import solve_rgf
from repro.solvers.splitsolve import SplitSolve


@register_solver("splitsolve", accelerated=True)
def _solve_splitsolve(a, ob, inj, *, num_partitions=1, parallel=False,
                      info=None):
    """The paper's multi-accelerator algorithm (SMW + Algorithm 1 + SPIKE).

    Works on the Sigma-free A directly; the boundary self-energies enter
    through the low-rank Sherman-Morrison-Woodbury correction.

    SplitSolve takes the top-row and bottom-row right-hand sides as two
    separate column sets, so the mixed-side ``inj`` is split by injection
    side (left-injected columns live in the first block row, right-injected
    in the last) and the solution columns are scattered back into injected
    order.
    """
    ss = SplitSolve(a, num_partitions=num_partitions, parallel=parallel)
    s1 = a.block_sizes[0]
    s2 = a.block_sizes[-1]
    ntot = sum(a.block_sizes)
    from_left = np.array([m.from_left for m in ob.injected], dtype=bool)
    if from_left.size != inj.shape[1]:
        # generic rhs (not one column per injected mode): solve all
        # columns against both block rows
        b_top = inj[:s1]
        b_bottom = inj[ntot - s2:, :0]
        psi = ss.solve(ob.sigma_l, ob.sigma_r, b_top, b_bottom)
    else:
        b_top = inj[:s1][:, from_left]
        b_bottom = inj[ntot - s2:][:, ~from_left]
        x = ss.solve(ob.sigma_l, ob.sigma_r, b_top, b_bottom)
        psi = np.empty((ntot, inj.shape[1]), dtype=complex)
        psi[:, from_left] = x[:, :b_top.shape[1]]
        psi[:, ~from_left] = x[:, b_top.shape[1]:]
    if info is not None:
        info["phase_times"] = dict(ss.timer.stages)
        info["num_devices"] = ss.num_devices
    return psi


@register_solver("rgf")
def _solve_rgf(a, ob, inj, *, num_partitions=1, parallel=False, info=None):
    """Recursive Green's function (block Thomas) [47]."""
    return solve_rgf(assemble_t(a, ob.sigma_l, ob.sigma_r), inj)


@register_solver("bcr")
def _solve_bcr(a, ob, inj, *, num_partitions=1, parallel=False, info=None):
    """Block cyclic reduction (OMEN's legacy CPU solver) [33]."""
    return solve_bcr(assemble_t(a, ob.sigma_l, ob.sigma_r), inj)


@register_solver("direct")
def _solve_direct(a, ob, inj, *, num_partitions=1, parallel=False,
                  info=None):
    """Sparse-direct LU (the MUMPS baseline)."""
    return solve_direct(assemble_t(a, ob.sigma_l, ob.sigma_r), inj)
