"""Sparse-direct solver — the MUMPS baseline of Fig. 8.

The paper compares SplitSolve against MUMPS 5.0 ("faster than SuperLU_dist
for these examples").  SciPy's SuperLU plays that role here: like MUMPS it
is a fill-reducing sparse LU, and the paper's observation — that its cost
explodes as the DFT basis multiplies the non-zeros per row — is a property
of sparse-direct factorization, not of one implementation.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.linalg import BlockTridiagonalMatrix
from repro.linalg import flops as _fl
from repro.utils.errors import SingularMatrixError


class SparseDirectSolver:
    """LU-factorize T once, solve many right-hand sides.

    Flop accounting: LAPACK-style estimate from the realized fill,
    sum_k 2 nnz(L[:, k]) nnz(U[k, :]), recorded as kernel ``zlu_sparse``.
    """

    def __init__(self, t, tag: str = ""):
        if isinstance(t, BlockTridiagonalMatrix):
            t = t.to_sparse()
        t = sp.csc_matrix(t, dtype=complex)
        t0 = time.perf_counter()
        try:
            self._lu = spla.splu(t)
        except RuntimeError as exc:
            raise SingularMatrixError(f"sparse LU failed: {exc}") from exc
        nflops = self._factor_flops()
        _fl.current_ledger().record(
            "zlu_sparse", nflops, 3 * t.data.nbytes,
            device=_fl.current_device(), tag=tag,
            t_start=t0, t_stop=time.perf_counter())
        self.shape = t.shape

    def _factor_flops(self) -> int:
        l_csc = self._lu.L.tocsc()
        u_csr = self._lu.U.tocsr()
        nnz_l_col = np.diff(l_csc.indptr)
        nnz_u_row = np.diff(u_csr.indptr)
        return int(2 * np.sum(nnz_l_col.astype(np.int64)
                              * nnz_u_row.astype(np.int64))) * 4

    @property
    def fill_nnz(self) -> int:
        """Realized non-zeros in L + U (the fill-in MUMPS suffers from)."""
        return int(self._lu.L.nnz + self._lu.U.nnz)

    def solve(self, b: np.ndarray, tag: str = "") -> np.ndarray:
        t0 = time.perf_counter()
        x = self._lu.solve(np.asarray(b, dtype=complex))
        nrhs = b.shape[1] if b.ndim == 2 else 1
        nflops = 2 * self.fill_nnz * nrhs * 4
        _fl.current_ledger().record(
            "zlu_sparse_solve", nflops, 2 * b.nbytes,
            device=_fl.current_device(), tag=tag,
            t_start=t0, t_stop=time.perf_counter())
        return x


def solve_direct(t, b: np.ndarray, tag: str = "") -> np.ndarray:
    """One-shot sparse-direct solve of T x = b."""
    return SparseDirectSolver(t, tag=tag).solve(b, tag=tag)
