"""Assembly of the transport system T = E S - H - Sigma^RB."""

from __future__ import annotations

import numpy as np

from repro.linalg import BlockTridiagonalMatrix
from repro.linalg.arena import scratch
from repro.linalg.batched import BatchedBlockTridiag
from repro.utils.errors import ShapeError


def assemble_t(a: BlockTridiagonalMatrix, sigma_l: np.ndarray,
               sigma_r: np.ndarray) -> BlockTridiagonalMatrix:
    """Fold the boundary self-energies into the corner diagonal blocks.

    Returns a new matrix; ``a`` is untouched (SplitSolve relies on the
    Sigma-free A staying available).
    """
    s1 = a.block_sizes[0]
    s2 = a.block_sizes[-1]
    if sigma_l.shape != (s1, s1):
        raise ShapeError(
            f"sigma_l is {sigma_l.shape}, first block is {s1}x{s1}")
    if sigma_r.shape != (s2, s2):
        raise ShapeError(
            f"sigma_r is {sigma_r.shape}, last block is {s2}x{s2}")

    # Only the two corner diagonal blocks are modified; every other block
    # can be shared with ``a`` (no solver writes into its input blocks),
    # which keeps assembly O(s1^2 + s2^2) instead of O(total).  ``astype``
    # already copies, so the corners are always private; interior blocks
    # are converted only when they are not complex128 yet.
    diag = [_as_complex(b) for b in a.diag]
    diag[0] = a.diag[0].astype(complex)
    if len(diag) > 1:
        diag[-1] = a.diag[-1].astype(complex)
    t = BlockTridiagonalMatrix(
        diag,
        [_as_complex(b) for b in a.upper],
        [_as_complex(b) for b in a.lower])
    t.diag[0] -= sigma_l
    t.diag[-1] -= sigma_r
    return t


def assemble_t_batched(a: BatchedBlockTridiag, sigma_l: np.ndarray,
                       sigma_r: np.ndarray) -> BatchedBlockTridiag:
    """Batched :func:`assemble_t`: fold per-energy self-energy stacks.

    ``sigma_l`` is ``(nE, s1, s1)`` and ``sigma_r`` is ``(nE, s2, s2)``
    — one boundary pair per energy of the batch.  Only the two corner
    diagonal stacks are copied; every interior stack is shared with
    ``a`` (same contract as the per-point assembly).  The corner copies
    are workspace scratch when an arena is active — the caller releases
    them after the solve consumes the assembled matrix (the pipeline
    does this at the end of its SOLVE stage).
    """
    s1 = a.block_sizes[0]
    s2 = a.block_sizes[-1]
    ne = a.batch_size
    if sigma_l.shape != (ne, s1, s1):
        raise ShapeError(
            f"sigma_l stack is {sigma_l.shape}, expected {(ne, s1, s1)}")
    if sigma_r.shape != (ne, s2, s2):
        raise ShapeError(
            f"sigma_r stack is {sigma_r.shape}, expected {(ne, s2, s2)}")
    diag = [_as_complex(b) for b in a.diag]
    diag[0] = scratch(a.diag[0].shape, complex, tag="assemble.corner")
    np.copyto(diag[0], a.diag[0])
    if len(diag) > 1:
        diag[-1] = scratch(a.diag[-1].shape, complex,
                           tag="assemble.corner")
        np.copyto(diag[-1], a.diag[-1])
    t = BatchedBlockTridiag(
        diag,
        [_as_complex(b) for b in a.upper],
        [_as_complex(b) for b in a.lower],
        energies=a.energies)
    t.diag[0] -= sigma_l
    t.diag[-1] -= sigma_r
    return t


def _as_complex(b: np.ndarray) -> np.ndarray:
    return b if b.dtype == np.complex128 else b.astype(complex)


def boundary_rhs(block_sizes, b_top: np.ndarray,
                 b_bottom: np.ndarray) -> np.ndarray:
    """Assemble the sparse-top/bottom right-hand side Inj as a dense array.

    ``b_top`` is (s1, m), ``b_bottom`` is (s2, m) — either may have zero
    columns.  The result has one column per injected mode, non-zero only
    in the first and last block rows (Fig. 4).
    """
    s1, s2 = block_sizes[0], block_sizes[-1]
    n = int(np.sum(block_sizes))
    if b_top.shape[0] != s1:
        raise ShapeError(f"b_top has {b_top.shape[0]} rows, expected {s1}")
    if b_bottom.shape[0] != s2:
        raise ShapeError(
            f"b_bottom has {b_bottom.shape[0]} rows, expected {s2}")
    m = b_top.shape[1] + b_bottom.shape[1]
    # The rhs escapes into cached boundaries and solver results, so it
    # is an escape checkout: counted by the workspace, never pooled.
    rhs = scratch((n, m), complex, zero=True, escape=True,
                  tag="assemble.rhs")
    rhs[:s1, :b_top.shape[1]] = b_top
    rhs[n - s2:, b_top.shape[1]:] = b_bottom
    return rhs
