"""Linear solvers for the Schroedinger equation with open boundaries.

The system of Fig. 4,

    T x = (E S - H - Sigma^RB) x = Inj,

is block tridiagonal except for the two Sigma corners, with a right-hand
side that is non-zero only in the first and last block rows.  Four solvers
are provided, matching the paper's Fig. 8 comparison:

* :mod:`direct` — sparse-direct LU (the MUMPS baseline),
* :mod:`rgf` — recursive Green's function (block Thomas) [47],
* :mod:`bcr` — block cyclic reduction (OMEN's legacy CPU solver) [33],
* :mod:`splitsolve` — the paper's multi-accelerator algorithm: low-rank
  decoupling of Sigma^RB (Sherman-Morrison-Woodbury), block-column
  inversion (Algorithm 1), and recursive SPIKE merging across partitions.
"""

from repro.solvers.assemble import (assemble_t, assemble_t_batched,
                                    boundary_rhs)
from repro.solvers.direct import SparseDirectSolver, solve_direct
from repro.solvers.rgf import solve_rgf, solve_rgf_batched, rgf_greens_blocks
from repro.solvers.bcr import solve_bcr
from repro.solvers.splitsolve import SplitSolve
from repro.solvers import dispatch as _dispatch  # registers built-in solvers

__all__ = [
    "assemble_t",
    "assemble_t_batched",
    "boundary_rhs",
    "SparseDirectSolver",
    "solve_direct",
    "solve_rgf",
    "solve_rgf_batched",
    "rgf_greens_blocks",
    "solve_bcr",
    "SplitSolve",
]
