"""Recursive Green's function (block Thomas) solver [47].

The workhorse of NEGF codes: a backward sweep builds the right-connected
inverses, a forward substitution recovers the solution.  Also provides the
Green's-function blocks (diagonal + boundary columns) needed for charge
and current densities in the NEGF route (Eq. 4).
"""

from __future__ import annotations

import numpy as np

from repro.linalg import BlockTridiagonalMatrix, gemm, lu_factor, lu_solve
from repro.utils.errors import ShapeError


def solve_rgf(t: BlockTridiagonalMatrix, b: np.ndarray,
              tag: str = "rgf") -> np.ndarray:
    """Solve T x = b by block forward/backward recursion.

    Cost: one LU of each diagonal Schur block plus two gemm per block —
    O(nB * s^3), the linear-in-device-length scaling tight-binding OMEN
    was built on.
    """
    offs = t.block_offsets()
    nb = t.num_blocks
    if b.shape[0] != offs[-1]:
        raise ShapeError(f"rhs has {b.shape[0]} rows, matrix {offs[-1]}")
    squeeze = b.ndim == 1
    if squeeze:
        b = b[:, None]
    b = b.astype(complex)

    # Backward sweep: Schur-complement factors from the bottom up.
    # schur_i = T_ii - T_{i,i+1} inv(schur_{i+1}) T_{i+1,i}
    facs = [None] * nb
    xi_up = [None] * nb  # inv(schur_{i+1}) T_{i+1,i} pieces
    yi = [None] * nb     # inv(schur_{i+1}) (partial rhs)
    schur = t.diag[nb - 1].astype(complex)
    carry = b[offs[nb - 1]:offs[nb]].copy()
    facs[nb - 1] = lu_factor(schur, tag=tag)
    for i in range(nb - 2, -1, -1):
        sol = lu_solve(facs[i + 1],
                       np.hstack([t.lower[i].astype(complex), carry]),
                       tag=tag)
        ncol = t.lower[i].shape[1]
        xi_up[i + 1] = sol[:, :ncol]
        yi[i + 1] = sol[:, ncol:]
        schur = t.diag[i] - gemm(t.upper[i].astype(complex),
                                 xi_up[i + 1], tag=tag)
        carry = b[offs[i]:offs[i + 1]] - gemm(t.upper[i].astype(complex),
                                              yi[i + 1], tag=tag)
        facs[i] = lu_factor(schur, tag=tag)

    # Forward substitution.
    x = np.empty_like(b)
    x[offs[0]:offs[1]] = lu_solve(facs[0], carry, tag=tag)
    for i in range(1, nb):
        # The Schur elimination already folded the rhs into yi/xi_up:
        # x_i = yi_i - xi_up_i @ x_{i-1}.
        x[offs[i]:offs[i + 1]] = yi[i] - gemm(xi_up[i],
                                              x[offs[i - 1]:offs[i]],
                                              tag=tag)
    return x[:, 0] if squeeze else x


def rgf_greens_blocks(t: BlockTridiagonalMatrix, tag: str = "rgf-g"):
    """Diagonal blocks and boundary block-columns of G = T^{-1}.

    Returns ``(g_diag, g_first_col, g_last_col)`` where ``g_diag[i]`` is
    G_{ii}, ``g_first_col[i]`` is G_{i,0} and ``g_last_col[i]`` is
    G_{i,nB-1} — everything NEGF needs for density (diagonal), injection
    (first/last columns), and transmission (corner blocks).
    """
    nb = t.num_blocks
    # Right-connected Green's functions gR_i (standard RGF).
    g_right = [None] * nb
    fac = lu_factor(t.diag[nb - 1].astype(complex), tag=tag)
    g_right[nb - 1] = lu_solve(fac, np.eye(t.block_sizes[-1],
                                           dtype=complex), tag=tag)
    for i in range(nb - 2, -1, -1):
        tmp = gemm(t.upper[i].astype(complex),
                   gemm(g_right[i + 1], t.lower[i].astype(complex),
                        tag=tag), tag=tag)
        fac = lu_factor(t.diag[i].astype(complex) - tmp, tag=tag)
        g_right[i] = lu_solve(fac, np.eye(t.block_sizes[i], dtype=complex),
                              tag=tag)

    # Full diagonal blocks, and the first column via downward recursion:
    # G_{i,0} = -gR_i T_{i,i-1} G_{i-1,0};  G_{00} = gR_0.
    g_diag = [None] * nb
    g_first = [None] * nb
    g_diag[0] = g_right[0]
    g_first[0] = g_right[0]
    for i in range(1, nb):
        g_first[i] = -gemm(g_right[i],
                           gemm(t.lower[i - 1].astype(complex),
                                g_first[i - 1], tag=tag), tag=tag)
        # Dyson: G_ii = gR_i + gR_i T_{i,i-1} G_{i-1,i-1} T_{i-1,i} gR_i
        left = gemm(g_right[i], t.lower[i - 1].astype(complex), tag=tag)
        right = gemm(t.upper[i - 1].astype(complex), g_right[i], tag=tag)
        g_diag[i] = g_right[i] + gemm(left, gemm(g_diag[i - 1], right,
                                                 tag=tag), tag=tag)

    # Last column by the mirrored recursion using left-connected GFs.
    g_left = [None] * nb
    fac = lu_factor(t.diag[0].astype(complex), tag=tag)
    g_left[0] = lu_solve(fac, np.eye(t.block_sizes[0], dtype=complex),
                         tag=tag)
    for i in range(1, nb):
        tmp = gemm(t.lower[i - 1].astype(complex),
                   gemm(g_left[i - 1], t.upper[i - 1].astype(complex),
                        tag=tag), tag=tag)
        fac = lu_factor(t.diag[i].astype(complex) - tmp, tag=tag)
        g_left[i] = lu_solve(fac, np.eye(t.block_sizes[i], dtype=complex),
                             tag=tag)
    g_last = [None] * nb
    g_last[nb - 1] = g_diag[nb - 1]
    for i in range(nb - 2, -1, -1):
        g_last[i] = -gemm(g_left[i],
                          gemm(t.upper[i].astype(complex), g_last[i + 1],
                               tag=tag), tag=tag)
    return g_diag, g_first, g_last
