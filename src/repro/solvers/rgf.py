"""Recursive Green's function (block Thomas) solver [47].

The workhorse of NEGF codes: a backward sweep builds the right-connected
inverses, a forward substitution recovers the solution.  Also provides the
Green's-function blocks (diagonal + boundary columns) needed for charge
and current densities in the NEGF route (Eq. 4), and an energy-batched
variant (:func:`solve_rgf_batched`) whose sweeps run once over stacked
blocks for all energies of a batch simultaneously.
"""

from __future__ import annotations

import numpy as np

from repro.linalg import BlockTridiagonalMatrix, gemm, lu_factor, lu_solve
from repro.linalg.arena import scratch, scratch_release
from repro.linalg.batched import (BatchedBlockTridiag, gemm_batched,
                                  lu_factor_batched, lu_solve_batched)
from repro.utils.errors import ShapeError


def _as_complex(b: np.ndarray) -> np.ndarray:
    """complex128 view-or-copy: no copy when the block already is one."""
    return b if b.dtype == np.complex128 else b.astype(complex)


def solve_rgf(t: BlockTridiagonalMatrix, b: np.ndarray,
              tag: str = "rgf") -> np.ndarray:
    """Solve T x = b by block forward/backward recursion.

    Cost: one LU of each diagonal Schur block plus two gemm per block —
    O(nB * s^3), the linear-in-device-length scaling tight-binding OMEN
    was built on.
    """
    offs = t.block_offsets()
    nb = t.num_blocks
    if b.shape[0] != offs[-1]:
        raise ShapeError(f"rhs has {b.shape[0]} rows, matrix {offs[-1]}")
    squeeze = b.ndim == 1
    if squeeze:
        b = b[:, None]
    # b is only ever read below (the sweeps subtract *from* its slices
    # into fresh arrays), so a complex input needs no defensive copy.
    b = _as_complex(b)
    # One up-front conversion per coupling block; the sweeps below used
    # to re-convert t.lower[i]/t.upper[i] on every use (up to three times
    # per block per call).
    upper = [_as_complex(u) for u in t.upper]
    lower = [_as_complex(l) for l in t.lower]

    # Backward sweep: Schur-complement factors from the bottom up.
    # schur_i = T_ii - T_{i,i+1} inv(schur_{i+1}) T_{i+1,i}
    facs = [None] * nb
    xi_up = [None] * nb  # inv(schur_{i+1}) T_{i+1,i} pieces
    yi = [None] * nb     # inv(schur_{i+1}) (partial rhs)
    schur = t.diag[nb - 1].astype(complex)
    carry = b[offs[nb - 1]:offs[nb]].copy()
    facs[nb - 1] = lu_factor(schur, tag=tag)
    for i in range(nb - 2, -1, -1):
        sol = lu_solve(facs[i + 1], np.hstack([lower[i], carry]), tag=tag)
        ncol = lower[i].shape[1]
        xi_up[i + 1] = sol[:, :ncol]
        yi[i + 1] = sol[:, ncol:]
        schur = t.diag[i] - gemm(upper[i], xi_up[i + 1], tag=tag)
        carry = b[offs[i]:offs[i + 1]] - gemm(upper[i], yi[i + 1], tag=tag)
        facs[i] = lu_factor(schur, tag=tag)

    # Forward substitution.  The result outlives the call (it becomes
    # psi), so it is an *escape* checkout: accounted in the workspace
    # telemetry, never pooled for reuse.
    x = scratch(b.shape, complex, escape=True, tag="rgf.x")
    x[offs[0]:offs[1]] = lu_solve(facs[0], carry, tag=tag)
    for i in range(1, nb):
        # The Schur elimination already folded the rhs into yi/xi_up:
        # x_i = yi_i - xi_up_i @ x_{i-1}.
        x[offs[i]:offs[i + 1]] = yi[i] - gemm(xi_up[i],
                                              x[offs[i - 1]:offs[i]],
                                              tag=tag)
    return x[:, 0] if squeeze else x


def solve_rgf_batched(t: BatchedBlockTridiag, b: np.ndarray,
                      tag: str = "rgf-batched") -> np.ndarray:
    """Solve T[e] x[e] = b[e] for a whole energy batch in stacked sweeps.

    The same block recursion as :func:`solve_rgf`, but every LU, solve,
    and gemm runs once over the ``(nE, ...)`` stack — one Python/BLAS
    dispatch and one ledger record per block instead of one per block
    *per energy*.  ``b`` is ``(nE, n, m)``: all energies of one call
    share the rhs width ``m`` (callers bucket ragged widths with
    :func:`repro.linalg.batched.bucket_by_width`).  Each slice of the
    result matches the per-point solve to machine precision — the
    stacked LAPACK routines execute the same factorizations slice by
    slice.
    """
    offs = t.block_offsets()
    nb = t.num_blocks
    b = np.asarray(b)
    if b.ndim != 3:
        raise ShapeError(f"batched rhs must be (nE, n, m), got {b.shape}")
    if b.shape[0] != t.batch_size:
        raise ShapeError(f"rhs batch {b.shape[0]} != matrix batch "
                         f"{t.batch_size}")
    if b.shape[1] != offs[-1]:
        raise ShapeError(f"rhs has {b.shape[1]} rows, matrix {offs[-1]}")
    # b is read-only below; complex inputs (the pipeline's stacked
    # injection rhs) are used in place instead of defensively copied.
    b = _as_complex(b)
    upper = [_as_complex(u) for u in t.upper]
    lower = [_as_complex(l) for l in t.lower]
    ne, m = b.shape[0], b.shape[2]

    # All large per-sweep temporaries — Schur stacks, rhs carries, the
    # [lower | carry] staging block — are workspace scratch
    # (:mod:`repro.linalg.arena`): checked out per block, released as
    # soon as consumed, reused across blocks and across successive
    # energy batches.  Without an active arena, `scratch` degrades to
    # the plain allocations this function always performed.  The in-
    # place forms (`np.matmul(..., out=)`, `np.subtract(..., out=)`,
    # `np.concatenate(..., out=)`) run the identical kernels into the
    # reused buffers, so every slice stays bitwise identical to the
    # fresh-allocation path.
    held: dict = {}

    def _scr(shape, tag_):
        buf = scratch(shape, complex, tag=tag_)
        held[id(buf)] = buf
        return buf

    def _rel(*bufs):
        for buf in bufs:
            held.pop(id(buf), None)
        scratch_release(*bufs)

    try:
        facs = [None] * nb
        xi_up = [None] * nb
        yi = [None] * nb
        schur = _as_complex(t.diag[nb - 1])
        carry = _scr((ne, offs[nb] - offs[nb - 1], m), "rgf.carry")
        np.copyto(carry, b[:, offs[nb - 1]:offs[nb]])
        facs[nb - 1] = lu_factor_batched(schur, tag=tag)
        for i in range(nb - 2, -1, -1):
            s_next, s_i = lower[i].shape[1], lower[i].shape[2]
            stage = _scr((ne, s_next, s_i + m), "rgf.stage")
            np.concatenate([lower[i], carry], axis=2, out=stage)
            sol = lu_solve_batched(facs[i + 1], stage, tag=tag)
            _rel(stage, carry)
            xi_up[i + 1] = sol[:, :, :s_i]
            yi[i + 1] = sol[:, :, s_i:]
            schur = _scr((ne, s_i, s_i), "rgf.schur")
            gemm_batched(upper[i], xi_up[i + 1], tag=tag, out=schur)
            np.subtract(t.diag[i], schur, out=schur)
            carry = _scr((ne, s_i, m), "rgf.carry")
            gemm_batched(upper[i], yi[i + 1], tag=tag, out=carry)
            np.subtract(b[:, offs[i]:offs[i + 1]], carry, out=carry)
            facs[i] = lu_factor_batched(schur, tag=tag)
            _rel(schur)

        # Forward substitution, stacked.  x escapes into the per-energy
        # psi results, so it is an escape checkout (never pooled).
        x = scratch(b.shape, complex, escape=True, tag="rgf.x")
        x[:, offs[0]:offs[1]] = lu_solve_batched(facs[0], carry, tag=tag)
        _rel(carry)
        for i in range(1, nb):
            s_i = offs[i + 1] - offs[i]
            g = _scr((ne, s_i, m), "rgf.fwd")
            gemm_batched(xi_up[i], x[:, offs[i - 1]:offs[i]], tag=tag,
                         out=g)
            np.subtract(yi[i], g, out=x[:, offs[i]:offs[i + 1]])
            _rel(g)
    except BaseException:
        scratch_release(*held.values())
        raise
    return x


def rgf_greens_blocks(t: BlockTridiagonalMatrix, tag: str = "rgf-g"):
    """Diagonal blocks and boundary block-columns of G = T^{-1}.

    Returns ``(g_diag, g_first_col, g_last_col)`` where ``g_diag[i]`` is
    G_{ii}, ``g_first_col[i]`` is G_{i,0} and ``g_last_col[i]`` is
    G_{i,nB-1} — everything NEGF needs for density (diagonal), injection
    (first/last columns), and transmission (corner blocks).
    """
    nb = t.num_blocks
    # Convert every block once; the three recursions below reuse them.
    diag = [_as_complex(d) for d in t.diag]
    upper = [_as_complex(u) for u in t.upper]
    lower = [_as_complex(l) for l in t.lower]
    # Right-connected Green's functions gR_i (standard RGF).
    g_right = [None] * nb
    fac = lu_factor(diag[nb - 1], tag=tag)
    g_right[nb - 1] = lu_solve(fac, np.eye(t.block_sizes[-1],
                                           dtype=complex), tag=tag)
    for i in range(nb - 2, -1, -1):
        tmp = gemm(upper[i], gemm(g_right[i + 1], lower[i], tag=tag),
                   tag=tag)
        fac = lu_factor(diag[i] - tmp, tag=tag)
        g_right[i] = lu_solve(fac, np.eye(t.block_sizes[i], dtype=complex),
                              tag=tag)

    # Full diagonal blocks, and the first column via downward recursion:
    # G_{i,0} = -gR_i T_{i,i-1} G_{i-1,0};  G_{00} = gR_0.
    g_diag = [None] * nb
    g_first = [None] * nb
    g_diag[0] = g_right[0]
    g_first[0] = g_right[0]
    for i in range(1, nb):
        g_first[i] = -gemm(g_right[i],
                           gemm(lower[i - 1], g_first[i - 1], tag=tag),
                           tag=tag)
        # Dyson: G_ii = gR_i + gR_i T_{i,i-1} G_{i-1,i-1} T_{i-1,i} gR_i
        left = gemm(g_right[i], lower[i - 1], tag=tag)
        right = gemm(upper[i - 1], g_right[i], tag=tag)
        g_diag[i] = g_right[i] + gemm(left, gemm(g_diag[i - 1], right,
                                                 tag=tag), tag=tag)

    # Last column by the mirrored recursion using left-connected GFs.
    g_left = [None] * nb
    fac = lu_factor(diag[0], tag=tag)
    g_left[0] = lu_solve(fac, np.eye(t.block_sizes[0], dtype=complex),
                         tag=tag)
    for i in range(1, nb):
        tmp = gemm(lower[i - 1], gemm(g_left[i - 1], upper[i - 1], tag=tag),
                   tag=tag)
        fac = lu_factor(diag[i] - tmp, tag=tag)
        g_left[i] = lu_solve(fac, np.eye(t.block_sizes[i], dtype=complex),
                             tag=tag)
    g_last = [None] * nb
    g_last[nb - 1] = g_diag[nb - 1]
    for i in range(nb - 2, -1, -1):
        g_last[i] = -gemm(g_left[i],
                          gemm(upper[i], g_last[i + 1], tag=tag), tag=tag)
    return g_diag, g_first, g_last
