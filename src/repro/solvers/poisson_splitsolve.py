"""SplitSolve applied beyond transport — the paper's generality claim.

Conclusion of the paper: "SplitSolve heavily relies on the structure of
the matrices encountered in quantum transport calculations (block
tri-diagonal + sparse right-hand-side) ... these properties can be found
in other research fields such as computational fluid dynamics or in the
solution of the Poisson equation.  Hence, our multi-GPU sparse linear
solver is not limited to one single problem."

This module demonstrates exactly that: a 3-D finite-difference Poisson
operator, sliced into x-planes, IS block tridiagonal (each plane couples
only to its neighbours), and boundary-driven problems (potential imposed
on the two end faces) have the sparse top/bottom right-hand side
SplitSolve expects.
"""

from __future__ import annotations

import numpy as np

from repro.linalg import BlockTridiagonalMatrix
from repro.poisson.fd import assemble_operator
from repro.poisson.grid import PoissonGrid
from repro.solvers.splitsolve import SplitSolve
from repro.utils.errors import ConfigurationError


def poisson_block_tridiagonal(grid: PoissonGrid,
                              eps_r: float = 1.0) -> BlockTridiagonalMatrix:
    """The div(eps grad .) operator as x-plane blocks.

    Node ordering is C order (x slowest), so consecutive blocks of
    ny*nz nodes are exactly the x-planes and the operator is block
    tridiagonal with diagonal coupling blocks.
    """
    nx, ny, nz = grid.shape
    if nx < 2:
        raise ConfigurationError("need at least 2 x-planes")
    eps = np.full(grid.num_nodes, float(eps_r))
    a = assemble_operator(grid, eps)
    plane = ny * nz
    return BlockTridiagonalMatrix.from_sparse(a.tocsr(), [plane] * nx)


def solve_poisson_splitsolve(grid: PoissonGrid, rho: np.ndarray,
                             phi_left: float, phi_right: float,
                             eps_r: float = 1.0,
                             num_partitions: int = 1) -> np.ndarray:
    """Solve the two-plate Poisson problem with SplitSolve.

    The potential is pinned to ``phi_left``/``phi_right`` on the first
    and last x-planes (Dirichlet electrodes); interior planes carry the
    charge.  The pinning is expressed in SplitSolve's native language: a
    corner "self-energy" that replaces the end blocks by the identity,
    and a right-hand side that is non-zero only in the end planes — the
    same (block tridiagonal + sparse RHS) structure as Eq. (5).
    """
    a = poisson_block_tridiagonal(grid, eps_r)
    nx = a.num_blocks
    plane = a.block_sizes[0]
    rho = np.asarray(rho, dtype=float).ravel()
    if rho.size != grid.num_nodes:
        raise ConfigurationError("rho size does not match grid")

    # Dirichlet end planes: row -> identity.  In T = A - Sigma form:
    # Sigma_end = A_end - 1.  The couplings out of the end planes stay in
    # A; the interior rows' references to the pinned values are moved to
    # the rhs below (exactly like repro.poisson.fd does).
    sigma_l = (a.diag[0] - np.eye(plane)).astype(complex)
    sigma_r = (a.diag[-1] - np.eye(plane)).astype(complex)

    from repro.poisson.grid import EPS0_E_PER_V_NM

    b = (-rho / EPS0_E_PER_V_NM).astype(complex)
    # End rows become the identity equations x = phi_plate; interior rows
    # keep their couplings INTO the pinned planes (the pinned values are
    # solved consistently), so the right-hand side stays non-zero only in
    # the first and last block rows — SplitSolve's native Inj structure.
    b[:plane] = phi_left
    b[-plane:] = phi_right
    a2 = a.copy()
    a2.upper[0] = np.zeros_like(a2.upper[0])    # row 0 -> plane 1
    a2.lower[-1] = np.zeros_like(a2.lower[-1])  # row nx-1 -> plane nx-2

    # Interior charge makes the RHS dense, outside SplitSolve's
    # sparse-Inj structure; fall back to the block solver for that case.
    if np.any(rho[plane:-plane] != 0.0):
        from repro.solvers import assemble_t, solve_rgf

        t = assemble_t(a2, sigma_l, sigma_r)
        return np.real(solve_rgf(t, b))

    ss = SplitSolve(a2, num_partitions=num_partitions, parallel=False)
    # SplitSolve treats top/bottom blocks as independent injection
    # columns (one per transport mode); the electrostatic problem has one
    # combined drive, so sum the two partial solutions.
    x = ss.solve(sigma_l, sigma_r, b[:plane, None], b[-plane:, None])
    return np.real(x.sum(axis=1))
