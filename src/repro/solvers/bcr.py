"""Block cyclic reduction — OMEN's legacy tight-binding solver [33].

Eliminates the odd-numbered blocks of the block-tridiagonal system in
parallel, halving the system each level: log2(nB) levels of independent
block eliminations.  This is the custom solver that "relies on the
sparsity provided by a tight-binding basis" and stops paying off once the
DFT basis inflates the block size — the motivation for SplitSolve.

This implementation handles non-uniform block sizes and any block count
(odd remainders are carried to the next level).
"""

from __future__ import annotations

import numpy as np

from repro.linalg import BlockTridiagonalMatrix, gemm, lu_factor, lu_solve
from repro.utils.errors import ShapeError


def solve_bcr(t: BlockTridiagonalMatrix, b: np.ndarray,
              tag: str = "bcr") -> np.ndarray:
    """Solve T x = b by block cyclic reduction."""
    offs = t.block_offsets()
    if b.shape[0] != offs[-1]:
        raise ShapeError(f"rhs has {b.shape[0]} rows, matrix {offs[-1]}")
    squeeze = b.ndim == 1
    if squeeze:
        b = b[:, None]

    diag = [blk.astype(complex) for blk in t.diag]
    upper = [blk.astype(complex) for blk in t.upper]
    lower = [blk.astype(complex) for blk in t.lower]
    rhs = [b[offs[i]:offs[i + 1]].astype(complex)
           for i in range(t.num_blocks)]

    x_blocks = _bcr_recurse(diag, upper, lower, rhs, tag)
    x = np.vstack(x_blocks)
    return x[:, 0] if squeeze else x


def _bcr_recurse(diag, upper, lower, rhs, tag):
    """One level of cyclic reduction, recursing on the even sub-system."""
    nb = len(diag)
    if nb == 1:
        fac = lu_factor(diag[0], tag=tag)
        return [lu_solve(fac, rhs[0], tag=tag)]
    if nb == 2:
        # direct 2x2 block solve via Schur complement on block 0
        fac1 = lu_factor(diag[1], tag=tag)
        sol = lu_solve(fac1, np.hstack([lower[0], rhs[1]]), tag=tag)
        ncol = lower[0].shape[1]
        s0 = diag[0] - gemm(upper[0], sol[:, :ncol], tag=tag)
        r0 = rhs[0] - gemm(upper[0], sol[:, ncol:], tag=tag)
        fac0 = lu_factor(s0, tag=tag)
        x0 = lu_solve(fac0, r0, tag=tag)
        x1 = sol[:, ncol:] - gemm(sol[:, :ncol], x0, tag=tag)
        return [x0, x1]

    # Eliminate odd blocks: each odd i couples only to i-1 and i+1; the
    # eliminations are mutually independent (the parallelism BCR exploits).
    odd = list(range(1, nb, 2))
    facs = {}
    solves = {}
    for i in odd:
        facs[i] = lu_factor(diag[i], tag=tag)
        cols = [rhs[i]]
        widths = [rhs[i].shape[1]]
        if i - 1 >= 0:
            cols.append(lower[i - 1])   # T_{i,i-1}
            widths.append(lower[i - 1].shape[1])
        if i + 1 < nb:
            cols.append(upper[i])       # T_{i,i+1}
            widths.append(upper[i].shape[1])
        sol = lu_solve(facs[i], np.hstack(cols), tag=tag)
        parts = np.split(sol, np.cumsum(widths)[:-1], axis=1)
        solves[i] = parts  # [inv*rhs, inv*T_{i,i-1}, (inv*T_{i,i+1})]

    new_diag, new_upper, new_lower, new_rhs, even = [], [], [], [], []
    for i in range(0, nb, 2):
        d = diag[i].copy()
        r = rhs[i].copy()
        up = None
        lo = None
        if i - 1 >= 0:  # neighbour odd block i-1 above
            inv_rhs = solves[i - 1][0]
            inv_lo = solves[i - 1][1]  # inv(d_{i-1}) T_{i-1,i-2}
            d -= gemm(lower[i - 1], solves[i - 1][-1], tag=tag)
            r -= gemm(lower[i - 1], inv_rhs, tag=tag)
            if i - 2 >= 0:
                lo = -gemm(lower[i - 1], inv_lo, tag=tag)
        if i + 1 < nb:  # neighbour odd block i+1 below
            inv_rhs = solves[i + 1][0]
            inv_lo = solves[i + 1][1]  # inv(d_{i+1}) T_{i+1,i}
            d -= gemm(upper[i], inv_lo, tag=tag)
            r -= gemm(upper[i], inv_rhs, tag=tag)
            if i + 2 < nb:
                inv_up = solves[i + 1][2]
                up = -gemm(upper[i], inv_up, tag=tag)
        new_diag.append(d)
        new_rhs.append(r)
        even.append(i)
        if up is not None:
            new_upper.append(up)
        if lo is not None:
            new_lower.append(lo)

    x_even = _bcr_recurse(new_diag, new_upper, new_lower, new_rhs, tag)

    # Back-substitute the odd blocks.
    x = [None] * nb
    for idx, i in enumerate(even):
        x[i] = x_even[idx]
    for i in odd:
        xi = solves[i][0].copy()
        pos = 1
        if i - 1 >= 0:
            xi -= gemm(solves[i][pos], x[i - 1], tag=tag)
            pos += 1
        if i + 1 < nb:
            xi -= gemm(solves[i][pos], x[i + 1], tag=tag)
        x[i] = xi
    return x
