"""Recursive SPIKE merging of partition inverses (paper Fig. 6, [48]).

Each partition p of the block-tridiagonal A owns its local inverse
boundary columns V^f = A_p^{-1} e_first and V^l = A_p^{-1} e_last
(computed by Algorithm 1).  Merging two adjacent partitions into one uses
only the coupling blocks between them and small corner solves, followed by
thin per-row updates — the "spikes" whose generation the paper times at
~10 s per recursive step.  log2(p) merge steps produce the global first
and last block columns of A^{-1}.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg import gemm, solve
from repro.linalg.flops import device_scope
from repro.observability.spans import current_tracer
from repro.utils.errors import ShapeError


@dataclass
class PartitionColumns:
    """Boundary columns of one (possibly merged) partition's inverse.

    ``first[i]``/``last[i]`` are the block-row i pieces of
    A_p^{-1} e_first / A_p^{-1} e_last; ``devices[i]`` names the simulated
    accelerator holding row i (flop attribution + memory model).
    """

    first: list
    last: list
    devices: list

    @property
    def num_block_rows(self) -> int:
        return len(self.first)

    def validate(self):
        if not (len(self.first) == len(self.last) == len(self.devices)):
            raise ShapeError("PartitionColumns lists must align")
        return self


def merge_partitions(top: PartitionColumns, bottom: PartitionColumns,
                     coupling_upper: np.ndarray,
                     coupling_lower: np.ndarray,
                     executor=None, tag: str = "spike") -> PartitionColumns:
    """Merge two adjacent partitions' inverse boundary columns.

    Parameters
    ----------
    coupling_upper : A_{last(top), first(bottom)} (the global upper block)
    coupling_lower : A_{first(bottom), last(top)}

    Notes
    -----
    Derivation (Sherman-Morrison on the 2x2 partition structure): with
    P = top, S = bottom, xi = (x_P)_last of the merged first column solves

        (1 - V^l_P[-1] Bc V^f_S[0] Cc) xi = V^f_P[-1],

    then x_P = V^f_P + V^l_P (Bc V^f_S[0] Cc xi) and
    x_S = -V^f_S (Cc xi); the merged last column is the mirror image.
    The corner solves are tiny; the V-updates are one thin gemm per block
    row and constitute the spike cost.
    """
    bc = np.asarray(coupling_upper, dtype=complex)
    cc = np.asarray(coupling_lower, dtype=complex)
    vpf_last = top.first[-1]
    vpl_last = top.last[-1]
    vsf_first = bottom.first[0]
    vsl_first = bottom.last[0]

    with device_scope(top.devices[-1]):
        # --- merged FIRST column ---
        bvc = gemm(bc, gemm(vsf_first, cc, tag=tag), tag=tag)
        lhs = np.eye(vpf_last.shape[0], dtype=complex) \
            - gemm(vpl_last, bvc, tag=tag)
        xi = solve(lhs, vpf_last, tag=tag)
        w_first = gemm(bvc, xi, tag=tag)            # update weight for top
        cc_xi = gemm(cc, xi, tag=tag)               # weight for bottom

        # --- merged LAST column ---
        cvb = gemm(cc, gemm(vpl_last, bc, tag=tag), tag=tag)
        lhs2 = np.eye(vsf_first.shape[0], dtype=complex) \
            - gemm(vsf_first, cvb, tag=tag)
        zeta = solve(lhs2, vsl_first, tag=tag)
        w_last = gemm(cvb, zeta, tag=tag)           # update weight, bottom
        bc_zeta = gemm(bc, zeta, tag=tag)           # weight for top

    # Merge communication accounting: every array that crosses the
    # partition boundary (coupling blocks in, corner columns in, update
    # weights broadcast back out to both partitions' rows).  On the real
    # machine these are the MPI/NVLink transfers of the recursive SPIKE
    # step; here a metrics counter makes them visible to the reports.
    tracer = current_tracer()
    if tracer is not None:
        moved = sum(arr.nbytes for arr in (
            bc, cc, vpf_last, vpl_last, vsf_first, vsl_first,
            w_first, cc_xi, w_last, bc_zeta))
        tracer.metrics.counter("splitsolve_merge_bytes").inc(int(moved))
        tracer.metrics.counter("splitsolve_merges").inc()

    # Both update weights for a side are broadcast together, and each
    # block row applies them with ONE fused (s, 2s)-wide gemm instead of
    # two (s, s) gemms: identical flop count, but top.last[i] /
    # bottom.first[i] stream through memory once instead of twice — the
    # spike traffic is the merge's dominant byte mover.
    w_top = np.hstack([w_first, bc_zeta])
    w_bot = np.hstack([cc_xi, w_last])
    nf = w_first.shape[1]

    def _update_top(i):
        with device_scope(top.devices[i]):
            upd = gemm(top.last[i], w_top, tag=tag)
            newf = top.first[i] + upd[:, :nf]
            newl = -upd[:, nf:]
        return newf, newl

    def _update_bottom(i):
        with device_scope(bottom.devices[i]):
            upd = gemm(bottom.first[i], w_bot, tag=tag)
            newf = -upd[:, :nf]
            newl = bottom.last[i] + upd[:, nf:]
        return newf, newl

    if executor is not None:
        top_res = list(executor.map(_update_top, range(top.num_block_rows)))
        bot_res = list(executor.map(_update_bottom,
                                    range(bottom.num_block_rows)))
    else:
        top_res = [_update_top(i) for i in range(top.num_block_rows)]
        bot_res = [_update_bottom(i) for i in range(bottom.num_block_rows)]

    first = [f for f, _ in top_res] + [f for f, _ in bot_res]
    last = [l for _, l in top_res] + [l for _, l in bot_res]
    return PartitionColumns(first=first, last=last,
                            devices=top.devices + bottom.devices).validate()
