"""The SplitSolve driver: partitioning, phases, pre/post-processing.

Workflow (Fig. 6):

* ``preprocess()`` — Step 1: Q = A^{-1} B.  The matrix is cut into
  ``num_partitions`` horizontal partitions (a power of two); each runs
  Algorithm 1 for its local first and last inverse columns on its pair of
  simulated accelerators (phases P1-P4), then partitions are merged
  recursively with SPIKE (log2 p steps).  This step is independent of the
  boundary conditions — the decoupling that lets the paper overlap it with
  FEAST on the CPUs.

* ``solve(sigma_l, sigma_r, b_top, b_bottom)`` — Steps 2-4: with
  Sigma^RB = B C and Q in hand, y = Q b', R = 1 - C Q (a 2s x 2s system),
  z = R^{-1} C y, and x = Q (b' + z) with one gemm per block.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.linalg import BlockTridiagonalMatrix, gemm, solve
from repro.linalg.flops import device_scope
from repro.solvers.splitsolve.algorithm1 import block_column_inverse
from repro.solvers.splitsolve.spike import PartitionColumns, merge_partitions
from repro.utils.errors import ConfigurationError, ShapeError
from repro.utils.timing import StageTimer
from repro.utils.validation import check_power_of_two


def _partition_ranges(nb: int, parts: int) -> list:
    """Split nb block rows into ``parts`` contiguous, balanced ranges."""
    if parts > nb:
        raise ConfigurationError(
            f"cannot split {nb} block rows into {parts} partitions")
    bounds = np.linspace(0, nb, parts + 1).astype(int)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(parts)]


class SplitSolve:
    """SplitSolve solver for T = (A - Sigma^RB) with A block tridiagonal.

    Parameters
    ----------
    a : BlockTridiagonalMatrix
        A = E S - H (no boundary self-energy).
    num_partitions : int
        Horizontal partitions (power of two).  The simulated accelerator
        count is ``2 * num_partitions`` (each partition pairs one device
        for the first-column sweep and one for the last-column sweep),
        matching the paper's "p/2 partitions on p accelerators".
    hermitian : bool | None
        Use the Hermitian Schur factorization path (the paper's
        zhesv_nopiv_gpu optimization).  ``None`` = autodetect from A.
    parallel : bool
        Run partition sweeps/merges on a thread pool (NumPy releases the
        GIL, so this gives genuine multi-core speedups standing in for
        multi-GPU execution).
    """

    def __init__(self, a: BlockTridiagonalMatrix, num_partitions: int = 1,
                 hermitian: bool | None = None, parallel: bool = True):
        check_power_of_two(num_partitions, "num_partitions")
        if a.num_blocks < 2:
            raise ConfigurationError(
                "SplitSolve needs at least 2 diagonal blocks")
        self.a = a
        self.num_partitions = num_partitions
        self.ranges = _partition_ranges(a.num_blocks, num_partitions)
        if hermitian is None:
            hermitian = a.hermitian_error() < 1e-10
        self.hermitian = hermitian
        self.parallel = parallel
        self.timer = StageTimer()
        self.q: PartitionColumns | None = None

    @property
    def num_devices(self) -> int:
        return 2 * self.num_partitions

    # -- Step 1 --------------------------------------------------------------

    def preprocess(self) -> "SplitSolve":
        """Compute Q = A^{-1} B (first + last block columns of A^{-1})."""
        a = self.a

        def _local(p):
            start, stop = self.ranges[p]
            local = BlockTridiagonalMatrix(
                a.diag[start:stop], a.upper[start:stop - 1],
                a.lower[start:stop - 1])
            dev_f, dev_l = f"gpu{2 * p}", f"gpu{2 * p + 1}"
            with device_scope(dev_f):
                vf = block_column_inverse(local, "first",
                                          hermitian=self.hermitian,
                                          tag="P1")
            with device_scope(dev_l):
                vl = block_column_inverse(local, "last",
                                          hermitian=self.hermitian,
                                          tag="P2")
            devices = [dev_f if i % 2 == 0 else dev_l
                       for i in range(stop - start)]
            return PartitionColumns(first=vf, last=vl,
                                    devices=devices).validate()

        pool = ThreadPoolExecutor(max_workers=self.num_devices) \
            if self.parallel else None
        try:
            with self.timer.stage("P1-P4 local inversion"):
                if pool is not None:
                    parts = list(pool.map(_local,
                                          range(self.num_partitions)))
                else:
                    parts = [_local(p) for p in range(self.num_partitions)]

            # Recursive pairwise merging: log2(p) steps.
            step = 0
            while len(parts) > 1:
                step += 1
                with self.timer.stage(f"spike merge {step}"):
                    merged = []
                    ranges = self.ranges if step == 1 else self._mranges
                    new_ranges = []
                    for k in range(0, len(parts), 2):
                        top, bottom = parts[k], parts[k + 1]
                        boundary = ranges[k][1] - 1  # global block index
                        bc = a.upper[boundary].astype(complex)
                        cc = a.lower[boundary].astype(complex)
                        merged.append(merge_partitions(
                            top, bottom, bc, cc,
                            executor=pool, tag=f"spike{step}"))
                        new_ranges.append((ranges[k][0], ranges[k + 1][1]))
                    parts = merged
                    self._mranges = new_ranges
            self.q = parts[0]
        finally:
            if pool is not None:
                pool.shutdown()
        return self

    # -- Steps 2-4 -----------------------------------------------------------

    def solve(self, sigma_l: np.ndarray, sigma_r: np.ndarray,
              b_top: np.ndarray, b_bottom: np.ndarray) -> np.ndarray:
        """Postprocessing: solve (A - Sigma^RB) x = Inj.

        ``b_top``/``b_bottom`` are the non-zero first/last block rows of
        Inj (any number of columns, including zero).
        """
        if self.q is None:
            self.preprocess()
        q = self.q
        a = self.a
        s1 = a.block_sizes[0]
        s2 = a.block_sizes[-1]
        if sigma_l.shape != (s1, s1) or sigma_r.shape != (s2, s2):
            raise ShapeError("self-energy block sizes do not match A")
        if b_top.shape[0] != s1 or b_bottom.shape[0] != s2:
            raise ShapeError("rhs block sizes do not match A")
        m = b_top.shape[1] + b_bottom.shape[1]
        bprime = np.zeros((s1 + s2, m), dtype=complex)
        bprime[:s1, :b_top.shape[1]] = b_top
        bprime[s1:, b_top.shape[1]:] = b_bottom

        with self.timer.stage("postprocessing"):
            with device_scope(q.devices[0]):
                # Corner blocks of Q: rows 0 and nB-1.
                q_top = np.hstack([q.first[0], q.last[0]])        # s1 x (s1+s2)
                q_bot = np.hstack([q.first[-1], q.last[-1]])      # s2 x (s1+s2)

                # Step 2: y = A^{-1} b = Q b' (only corner rows needed now).
                y_top = gemm(q_top, bprime, tag="post")
                y_bot = gemm(q_bot, bprime, tag="post")

                # Step 3: R z = C y with C = diag-corners(Sigma_L, Sigma_R).
                cy = np.vstack([gemm(sigma_l, y_top, tag="post"),
                                gemm(sigma_r, y_bot, tag="post")])
                cq = np.vstack([gemm(sigma_l, q_top, tag="post"),
                                gemm(sigma_r, q_bot, tag="post")])
                r = np.eye(s1 + s2, dtype=complex) - cq
                z = solve(r, cy, tag="post")
                weights = bprime + z

            # Step 4: x = Q (b' + z), one gemm per block row.
            def _row(i):
                with device_scope(q.devices[i]):
                    qi = np.hstack([q.first[i], q.last[i]])
                    return gemm(qi, weights, tag="post")

            if self.parallel and q.num_block_rows > 1:
                with ThreadPoolExecutor(max_workers=self.num_devices) as ex:
                    rows = list(ex.map(_row, range(q.num_block_rows)))
            else:
                rows = [_row(i) for i in range(q.num_block_rows)]
        return np.vstack(rows)
