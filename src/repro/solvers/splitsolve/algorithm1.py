"""Algorithm 1 of the paper: block-column inversion on one partition.

Computes the first and last block columns of A^{-1} for a block
tridiagonal A by two sweeps.  Each step is "two matrix-matrix
multiplications, one LU factorization, and one backward substitution" on
dense blocks — the cuBLAS zgemm / MAGMA zgesv_nopiv_gpu kernel mix whose
GPU execution the paper profiles in Fig. 12(b).

When A is Hermitian (real energy, 1-D/2-D structures) the Schur blocks
D_i = A_ii - A_{i,i+1} D_{i+1}^{-1} A_{i+1,i} are Hermitian too, enabling
the zhesv_nopiv_gpu variant that lifted the paper's sustained performance
from 12.8 to 15 PFlop/s (Section 5E).
"""

from __future__ import annotations

import numpy as np

from repro.linalg import BlockTridiagonalMatrix, gemm, solve
from repro.utils.errors import ShapeError


def block_column_inverse(a: BlockTridiagonalMatrix, which: str = "first",
                         hermitian: bool = False, tag: str = "P1") -> list:
    """Return the blocks of one boundary block-column of A^{-1}.

    Parameters
    ----------
    which : "first" | "last"
        Which block column of the inverse to compute.
    hermitian : bool
        Use the Hermitian factorization path for the Schur blocks.

    Returns
    -------
    list of blocks ``q[i] = (A^{-1})_{i, 0}`` (or ``_{i, nB-1}``), i.e.
    the paper's Q_i with Q_{i,1:s} = A^{-1}_{i,1}.
    """
    if which not in ("first", "last"):
        raise ShapeError(f"which must be 'first' or 'last', not {which!r}")
    nb = a.num_blocks
    assume = "her" if hermitian else "gen"

    if which == "first":
        # Downward sweep (phases P1/P3 of Fig. 6): X_{nB+1} = 0;
        # (A_ii - A_{i,i+1} X_{i+1}) X_i = A_{i,i-1}, then
        # Q_i = -X_i Q_{i-1} with Q_0 = -1 (so Q_1 = D_1^{-1}).
        x_next = None
        xs = [None] * nb
        for i in range(nb - 1, 0, -1):
            d = a.diag[i].astype(complex)
            if x_next is not None:
                d = d - gemm(a.upper[i].astype(complex), x_next, tag=tag)
            xs[i] = solve(d, a.lower[i - 1].astype(complex),
                          assume_a=assume, tag=tag)
            x_next = xs[i]
        d1 = a.diag[0].astype(complex)
        if nb > 1:
            d1 = d1 - gemm(a.upper[0].astype(complex), xs[1], tag=tag)
        q = [None] * nb
        q[0] = solve(d1, np.eye(a.block_sizes[0], dtype=complex),
                     assume_a=assume, tag=tag)
        for i in range(1, nb):
            q[i] = -gemm(xs[i], q[i - 1], tag=tag)
        return q

    # Upward sweep for the last column (mirror image).
    x_prev = None
    xs = [None] * nb
    for i in range(0, nb - 1):
        d = a.diag[i].astype(complex)
        if x_prev is not None:
            d = d - gemm(a.lower[i - 1].astype(complex), x_prev, tag=tag)
        xs[i] = solve(d, a.upper[i].astype(complex),
                      assume_a=assume, tag=tag)
        x_prev = xs[i]
    dn = a.diag[nb - 1].astype(complex)
    if nb > 1:
        dn = dn - gemm(a.lower[nb - 2].astype(complex), xs[nb - 2], tag=tag)
    q = [None] * nb
    q[nb - 1] = solve(dn, np.eye(a.block_sizes[-1], dtype=complex),
                      assume_a=assume, tag=tag)
    for i in range(nb - 2, -1, -1):
        q[i] = -gemm(xs[i], q[i + 1], tag=tag)
    return q
