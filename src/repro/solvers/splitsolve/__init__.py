"""SplitSolve — the paper's multi-accelerator transport solver (Section 3B).

The algorithm rests on three ideas:

1. **Low-rank decoupling** (Sherman-Morrison-Woodbury): write
   T = A - B C with A = E S - H block tridiagonal and B C the boundary
   self-energy confined to the two corner blocks.  The expensive part —
   Q = A^{-1} B, the first and last block columns of A^{-1} — does not
   depend on Sigma^RB, so it runs on the GPUs *while* FEAST computes the
   OBCs on the CPUs.

2. **Algorithm 1**: block-column inversion by two independent sweeps
   (first column downward, last column upward — "naturally scale to two
   accelerators").

3. **SPIKE merging**: for p > 2 accelerators the matrix is split into
   horizontal partitions, each inverted locally, then merged pairwise and
   recursively (log2 p steps of constant cost).

Postprocessing (steps 2-4 of the paper) is a small (2s x 2s) solve plus
one gemm per block.
"""

from repro.solvers.splitsolve.driver import SplitSolve
from repro.solvers.splitsolve.algorithm1 import block_column_inverse
from repro.solvers.splitsolve.spike import PartitionColumns, merge_partitions

__all__ = [
    "SplitSolve",
    "block_column_inverse",
    "PartitionColumns",
    "merge_partitions",
]
