"""Momentum-space assembly: H(k), S(k) from real-space image blocks.

OMEN's first two parallelization levels loop over transverse momentum k
and energy E (Fig. 9).  For each k this module assembles the complex
Hermitian matrices the transport kernels consume.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.hamiltonian.builder import RealSpaceMatrices
from repro.utils.errors import ConfigurationError


def assemble_k(rsm: RealSpaceMatrices, kpoint=(0.0, 0.0)):
    """Assemble H(k), S(k) = sum_R exp(2 pi i k.R) (H_R, S_R).

    Parameters
    ----------
    kpoint : (2,) floats
        Fractional momentum (k_y, k_z) in units of the transverse
        reciprocal-lattice vectors; only periodic directions contribute.

    Returns
    -------
    (H(k), S(k)) as CSR matrices; complex128 unless k = 0 (then the
    imaginary part cancels exactly and real matrices are returned, which
    the solvers exploit — "A is usually real symmetric in 3-D structures").
    """
    ky, kz = float(kpoint[0]), float(kpoint[1])
    at_gamma = (ky == 0.0 and kz == 0.0)
    norb = rsm.norb
    dtype = np.float64 if at_gamma else np.complex128
    hk = sp.csr_matrix((norb, norb), dtype=dtype)
    sk = sp.csr_matrix((norb, norb), dtype=dtype)
    for (ny, nz), (h, s) in rsm.images.items():
        phase = np.exp(2j * np.pi * (ky * ny + kz * nz))
        if at_gamma:
            phase = 1.0
        hk = hk + phase * h
        sk = sk + phase * s
    hk = hk.tocsr()
    sk = sk.tocsr()
    return hk, sk


def transverse_k_grid(num_k: int, reduced: bool = True) -> np.ndarray:
    """1-D transverse momentum grid (fractional k_z), Monkhorst-Pack style.

    The paper's UTB scaling runs use 21 k-points.  With time-reversal
    symmetry (real H_R), T(k) = T(-k); ``reduced=True`` returns only
    k >= 0 with integration weights, halving the workload exactly as OMEN
    does.

    Returns
    -------
    (nk, 2) array of rows ``(k_fractional, weight)`` with weights summing
    to 1.
    """
    if num_k < 1:
        raise ConfigurationError("num_k must be >= 1")
    ks = (np.arange(num_k) - (num_k - 1) / 2.0) / num_k
    w = np.full(num_k, 1.0 / num_k)
    if not reduced:
        return np.column_stack([ks, w])
    out = {}
    for k, wi in zip(ks, w):
        key = round(abs(k), 12)
        out[key] = out.get(key, 0.0) + wi
    kk = np.array(sorted(out))
    ww = np.array([out[k] for k in kk])
    return np.column_stack([kk, ww])
