"""Assembly of real-space H and S matrices from a structure and basis.

The builder produces *image-resolved* matrices: for every transverse
periodic image shift R = (n_y, n_z) within the interaction cutoff it
returns sparse H_R, S_R with

    H(k) = sum_R exp(2 pi i k . R) H_R                      (Hermitian)

assembled later by :mod:`repro.hamiltonian.kspace`.  The transport axis x
is never wrapped: the device region is finite and its contact continuation
is handled by the open boundary conditions (Eq. 5), exactly as in OMEN.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
from scipy.spatial import cKDTree

from repro.basis.shells import BasisSet
from repro.hamiltonian.slater_koster import (
    ETA_HAMILTONIAN,
    ETA_OVERLAP,
    atom_pair_block,
    onsite_block,
)
from repro.utils.errors import ConfigurationError


@dataclass
class RealSpaceMatrices:
    """Image-resolved H/S of one structure in one basis.

    Attributes
    ----------
    images : dict
        ``(ny, nz) -> (H_R, S_R)`` as CSR matrices of size norb x norb.
        Contains every image with any interaction, including (0, 0);
        ``H_{-R} = H_R^T`` is stored explicitly.
    offsets : (N+1,) int array
        Orbital offset of each atom (``offsets[-1] == norb``).
    """

    structure: object
    basis: BasisSet
    images: dict
    offsets: np.ndarray

    @property
    def norb(self) -> int:
        return int(self.offsets[-1])

    @property
    def home(self):
        """The R = (0, 0) pair (H_0, S_0)."""
        return self.images[(0, 0)]


def _transverse_image_shifts(structure, cutoff: float):
    """Periodic image shifts (ny, nz) that can host interactions."""
    shifts = [(0, 0)]
    ny_max = nz_max = 0
    if structure.periodic[1]:
        ny_max = int(np.ceil(cutoff / structure.cell[1, 1]))
    if structure.periodic[2]:
        nz_max = int(np.ceil(cutoff / structure.cell[2, 2]))
    for ny in range(-ny_max, ny_max + 1):
        for nz in range(-nz_max, nz_max + 1):
            if (ny, nz) != (0, 0):
                shifts.append((ny, nz))
    return shifts


def build_matrices(structure, basis: BasisSet) -> RealSpaceMatrices:
    """Build image-resolved H and S.

    Notes
    -----
    * Only axes 1 (y) and 2 (z) are treated as periodic here even if the
      structure is lead-periodic along x — the x repetition belongs to the
      transport problem, not the device matrix.
    * H and S are real; Hermiticity of H(k) follows from H_{-R} = H_R^T,
      which this routine enforces by construction.
    """
    n = structure.num_atoms
    if n == 0:
        raise ConfigurationError("cannot build matrices for empty structure")
    shells = [basis.for_species(sym).shells for sym in structure.species]
    norbs = np.array([sum(sh.num_orbitals for sh in s) for s in shells])
    offsets = np.concatenate([[0], np.cumsum(norbs)])
    norb = int(offsets[-1])
    cutoff = basis.cutoff

    pos = structure.positions
    tree = cKDTree(pos)
    shifts = _transverse_image_shifts(structure, cutoff)

    images = {}
    for (ny, nz) in shifts:
        if (ny, nz) in images:
            continue
        shift_vec = ny * structure.cell[1] + nz * structure.cell[2]
        rows, cols, hvals, svals = [], [], [], []

        if (ny, nz) == (0, 0):
            # Onsite blocks.
            for i in range(n):
                blk = onsite_block(shells[i])
                r, c = np.nonzero(blk)
                rows.append(r + offsets[i])
                cols.append(c + offsets[i])
                hvals.append(blk[r, c])
                # Onsite overlap (identity) is added once at the end.
                svals.append(np.zeros(len(r)))
            pairs = tree.query_pairs(cutoff, output_type="ndarray")
            pair_list = [(i, j) for i, j in pairs]
        else:
            shifted = pos + shift_vec
            neigh = tree.query_ball_point(shifted, cutoff)
            pair_list = [(i, j) for j, lst in enumerate(neigh) for i in lst]

        for i, j in pair_list:
            delta = pos[j] + shift_vec - pos[i]
            r = np.linalg.norm(delta)
            if r < 1e-9 or r > cutoff:
                continue
            hblk = atom_pair_block(shells[i], shells[j], delta,
                                   basis.energy_scale, ETA_HAMILTONIAN)
            if basis.is_orthogonal:
                sblk = None
                rr, cc = np.nonzero(np.abs(hblk) > 0)
            else:
                sblk = atom_pair_block(shells[i], shells[j], delta,
                                       basis.overlap_scale, ETA_OVERLAP,
                                       basis.overlap_decay_factor)
                rr, cc = np.nonzero(np.abs(hblk) + np.abs(sblk) > 0)
            rows.append(rr + offsets[i])
            cols.append(cc + offsets[j])
            hvals.append(hblk[rr, cc])
            svals.append(sblk[rr, cc] if sblk is not None
                         else np.zeros(len(rr)))
            if (ny, nz) == (0, 0):
                # Symmetric counterpart within the home image.
                rows.append(cc + offsets[j])
                cols.append(rr + offsets[i])
                hvals.append(hblk[rr, cc])
                svals.append(sblk[rr, cc] if sblk is not None
                             else np.zeros(len(rr)))

        def _csr(vals):
            if rows:
                return sp.csr_matrix(
                    (np.concatenate(vals),
                     (np.concatenate(rows), np.concatenate(cols))),
                    shape=(norb, norb))
            return sp.csr_matrix((norb, norb))

        h = _csr(hvals)
        s = _csr(svals)
        # The onsite overlap (identity) belongs to the home image only;
        # orthogonal bases have no inter-atomic overlap at all.
        if basis.is_orthogonal:
            s = sp.identity(norb, format="csr") if (ny, nz) == (0, 0) \
                else sp.csr_matrix((norb, norb))
        elif (ny, nz) == (0, 0):
            s = s + sp.identity(norb, format="csr")
        images[(ny, nz)] = (h, s)
        if (ny, nz) != (0, 0):
            images[(-ny, -nz)] = (h.T.tocsr(), s.T.tocsr())

    return RealSpaceMatrices(structure=structure, basis=basis,
                             images=images, offsets=offsets)
