"""Supercell folding: reduce inter-cell interaction range NBW to 1.

A basis whose orbitals couple cells up to NBW apart gives a block
NBW-diagonal matrix.  Grouping g >= NBW consecutive cells into one
super-cell makes the matrix block *tri*diagonal again at the price of
g-times-larger blocks — this is how OMEN feeds DFT matrices to solvers
written for nearest-neighbour block structure, and why the DFT blocks are
so much heavier than tight-binding ones.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigurationError


def fold_block_sizes(block_sizes, group: int) -> list:
    """Merge ``group`` consecutive block sizes into super-block sizes.

    The trailing super-block absorbs any remainder blocks, so the total
    size is preserved for any block count.
    """
    block_sizes = list(block_sizes)
    if group < 1:
        raise ConfigurationError("group must be >= 1")
    if group > len(block_sizes):
        raise ConfigurationError(
            f"cannot group {group} blocks out of {len(block_sizes)}")
    nfull = len(block_sizes) // group
    out = [sum(block_sizes[i * group:(i + 1) * group])
           for i in range(nfull)]
    rem = block_sizes[nfull * group:]
    if rem:
        out[-1] += sum(rem)
    return out


def fold_lead_blocks(h_cells: list, group: int):
    """Fold per-cell lead coupling blocks into super-cell (H00, H01).

    Parameters
    ----------
    h_cells : list of ndarrays
        ``h_cells[l]`` is the coupling block H_{q,q+l} between lead unit
        cell q and q+l, for l = 0 .. NBW (uniform cell size n).  Symmetry
        provides H_{q,q-l} = H_{q,q+l}^H.
    group : int
        Cells per super-cell; must be >= NBW = len(h_cells) - 1.

    Returns
    -------
    (H00, H01) : super-cell onsite and nearest-neighbour coupling blocks,
    each of size (group*n, group*n).
    """
    nbw = len(h_cells) - 1
    if nbw < 0:
        raise ConfigurationError("need at least the onsite block")
    if group < max(nbw, 1):
        raise ConfigurationError(
            f"group ({group}) must be >= NBW ({nbw})")
    n = h_cells[0].shape[0]
    for l, h in enumerate(h_cells):
        if h.shape != (n, n):
            raise ConfigurationError(
                f"lead block {l} has shape {h.shape}, expected {(n, n)}")
    dtype = np.result_type(*[h.dtype for h in h_cells])
    big = group * n
    h00 = np.zeros((big, big), dtype=dtype)
    h01 = np.zeros((big, big), dtype=dtype)

    def cell_block(l):
        """H_{q,q+l} for any integer l, zero beyond NBW."""
        if abs(l) > nbw:
            return None
        return h_cells[l] if l >= 0 else h_cells[-l].conj().T

    for a in range(group):
        for b in range(group):
            blk = cell_block(b - a)
            if blk is not None:
                h00[a * n:(a + 1) * n, b * n:(b + 1) * n] = blk
            blk = cell_block(b + group - a)
            if blk is not None:
                h01[a * n:(a + 1) * n, b * n:(b + 1) * n] = blk
    return h00, h01
