"""Hamiltonian/overlap matrix generation — the CP2K substitute.

Produces exactly what OMEN imports from CP2K (Fig. 2): the Hamiltonian H
and overlap S of a structure in a localized basis, as sparse matrices with
known block structure, plus the momentum-resolved H(k), S(k) that OMEN
assembles itself for transversely periodic systems ("CP2K currently does
not provide any momentum dependence ... this issue is resolved by first
cutting all the needed blocks from 3-D simulations and then generating
H(k) and S(k) in OMEN").
"""

from repro.hamiltonian.builder import RealSpaceMatrices, build_matrices
from repro.hamiltonian.kspace import assemble_k, transverse_k_grid
from repro.hamiltonian.partition import (
    orbital_offsets,
    block_sizes_from_slabs,
    block_bandwidth,
    to_block_tridiagonal,
)
from repro.hamiltonian.folding import fold_block_sizes, fold_lead_blocks
from repro.hamiltonian.device import DeviceMatrices, build_device, LeadBlocks
from repro.hamiltonian.fileio import (
    save_matrices,
    load_matrices,
    distribute_matrices,
)
from repro.hamiltonian.sparsity import sparsity_report, SparsityReport

__all__ = [
    "RealSpaceMatrices",
    "build_matrices",
    "assemble_k",
    "transverse_k_grid",
    "orbital_offsets",
    "block_sizes_from_slabs",
    "block_bandwidth",
    "to_block_tridiagonal",
    "fold_block_sizes",
    "fold_lead_blocks",
    "DeviceMatrices",
    "build_device",
    "LeadBlocks",
    "save_matrices",
    "load_matrices",
    "distribute_matrices",
    "sparsity_report",
    "SparsityReport",
]
