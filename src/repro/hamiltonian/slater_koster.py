"""Two-center matrix-element construction (Slater-Koster tables for s, p).

Couplings between shells are built from sigma/pi bond integrals with
Gaussian radial decay; the angular structure follows Slater & Koster
(1954), which guarantees a real-symmetric H for any geometry.
"""

from __future__ import annotations

import numpy as np

from repro.basis.shells import Shell

#: Bond-integral anisotropies for the Hamiltonian (Harrison's ratios).
ETA_HAMILTONIAN = {
    ("ss", "sigma"): -1.40,
    ("sp", "sigma"): +1.84,
    ("pp", "sigma"): +3.24,
    ("pp", "pi"): -0.81,
}

#: Bond-integral anisotropies for the overlap matrix.
ETA_OVERLAP = {
    ("ss", "sigma"): +1.00,
    ("sp", "sigma"): +0.80,
    ("pp", "sigma"): -0.90,
    ("pp", "pi"): +0.45,
}


def radial(r: float, sh_i: Shell, sh_j: Shell,
           decay_factor: float = 1.0) -> float:
    """Gaussian-product radial decay of a two-center integral.

    Two Gaussians of widths ``decay_i``/``decay_j`` separated by r overlap
    like exp(-r^2 / (2 (d_i^2 + d_j^2))); contraction weights multiply.
    """
    d2 = (sh_i.decay ** 2 + sh_j.decay ** 2) * decay_factor ** 2
    return sh_i.weight * sh_j.weight * np.exp(-r * r / (2.0 * d2))


def shell_pair_block(sh_i: Shell, sh_j: Shell, delta: np.ndarray,
                     scale: float, eta: dict,
                     decay_factor: float = 1.0) -> np.ndarray:
    """Matrix block between shell ``sh_i`` on atom A and ``sh_j`` on atom B.

    Parameters
    ----------
    delta : (3,) array
        r_B - r_A (nm); must be non-zero (onsite handled separately).
    scale : float
        Global energy scale (eV) or overlap scale (dimensionless).
    eta : dict
        Bond-integral table, :data:`ETA_HAMILTONIAN` or :data:`ETA_OVERLAP`.

    Returns
    -------
    (n_i, n_j) block in the orbital order (s,) or (px, py, pz).
    """
    r = float(np.linalg.norm(delta))
    d = delta / r  # direction cosines (l, m, n), pointing A -> B
    rad = scale * radial(r, sh_i, sh_j, decay_factor)

    if sh_i.l == 0 and sh_j.l == 0:
        return np.array([[eta[("ss", "sigma")] * rad]])
    if sh_i.l == 0 and sh_j.l == 1:
        return (eta[("sp", "sigma")] * rad * d)[None, :]
    if sh_i.l == 1 and sh_j.l == 0:
        # <p_a(A) | O | s(B)> = -l_a V_sp(sigma): odd parity of p.
        return (-eta[("sp", "sigma")] * rad * d)[:, None]
    # p-p: sigma along the bond, pi transverse.
    ddt = np.outer(d, d)
    return rad * (eta[("pp", "sigma")] * ddt
                  + eta[("pp", "pi")] * (np.eye(3) - ddt))


def atom_pair_block(shells_i, shells_j, delta: np.ndarray, scale: float,
                    eta: dict, decay_factor: float = 1.0) -> np.ndarray:
    """Full inter-atomic block: all shells of A against all shells of B."""
    ni = sum(sh.num_orbitals for sh in shells_i)
    nj = sum(sh.num_orbitals for sh in shells_j)
    out = np.zeros((ni, nj))
    ro = 0
    for sh_i in shells_i:
        co = 0
        for sh_j in shells_j:
            blk = shell_pair_block(sh_i, sh_j, delta, scale, eta,
                                   decay_factor)
            out[ro:ro + sh_i.num_orbitals, co:co + sh_j.num_orbitals] = blk
            co += sh_j.num_orbitals
        ro += sh_i.num_orbitals
    return out


def onsite_block(shells) -> np.ndarray:
    """Diagonal onsite block: shell energies on the diagonal."""
    diag = []
    for sh in shells:
        diag.extend([sh.energy] * sh.num_orbitals)
    return np.diag(diag)
