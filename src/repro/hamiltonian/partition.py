"""Block partitioning of assembled matrices.

Maps the atom-level slab decomposition (:mod:`repro.structure.slabs`) to
orbital-level block sizes and cuts sparse H/S into the
:class:`~repro.linalg.BlockTridiagonalMatrix` layout of Fig. 4.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.linalg import BlockTridiagonalMatrix
from repro.utils.errors import ConfigurationError, ShapeError


def orbital_offsets(structure, basis) -> np.ndarray:
    """Orbital start index of each atom; last entry is the total count."""
    norbs = basis.orbitals_per_atom(structure)
    return np.concatenate([[0], np.cumsum(norbs)])


def block_sizes_from_slabs(structure, basis, slab_index,
                           num_slabs: int) -> np.ndarray:
    """Orbital count per slab (block sizes of the transport matrix).

    Requires the structure to already be slab-ordered (atoms of slab i
    contiguous and before slab i+1) — enforce with
    :func:`repro.structure.slabs.order_by_slab` first.
    """
    slab_index = np.asarray(slab_index)
    if np.any(np.diff(slab_index) < 0):
        raise ConfigurationError(
            "structure must be slab-ordered before block partitioning")
    norbs = np.asarray(basis.orbitals_per_atom(structure))
    sizes = np.zeros(num_slabs, dtype=int)
    np.add.at(sizes, slab_index, norbs)
    if np.any(sizes == 0):
        raise ConfigurationError(
            f"empty slab(s) {np.nonzero(sizes == 0)[0].tolist()}: "
            "reduce num_slabs or use a denser structure")
    return sizes


def block_bandwidth(mat, block_sizes) -> int:
    """Largest |block_i - block_j| over the non-zeros of ``mat``.

    This is NBW: the inter-cell interaction range of Eq. (6).  1 means
    block tridiagonal; the DFT-surrogate basis typically yields 2.
    """
    coo = sp.coo_matrix(mat)
    offsets = np.concatenate([[0], np.cumsum(block_sizes)])
    if offsets[-1] != mat.shape[0]:
        raise ShapeError("block sizes do not cover the matrix")
    bi = np.searchsorted(offsets, coo.row, side="right") - 1
    bj = np.searchsorted(offsets, coo.col, side="right") - 1
    if len(bi) == 0:
        return 0
    return int(np.max(np.abs(bi - bj)))


def to_block_tridiagonal(mat, block_sizes,
                         strict: bool = True) -> BlockTridiagonalMatrix:
    """Cut ``mat`` into block-tridiagonal form.

    With ``strict=True`` (default) a :class:`ShapeError` is raised if any
    non-zero falls outside the band — silently dropping interactions would
    corrupt the physics.  Fold blocks first
    (:func:`repro.hamiltonian.folding.fold_block_sizes`) if NBW > 1.
    """
    if strict:
        nbw = block_bandwidth(mat, block_sizes)
        if nbw > 1:
            raise ShapeError(
                f"matrix has block bandwidth {nbw} > 1; fold "
                f"{nbw} blocks per super-block before cutting")
    return BlockTridiagonalMatrix.from_sparse(sp.csr_matrix(mat), block_sizes)
