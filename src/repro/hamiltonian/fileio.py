"""File-based CP2K -> OMEN matrix transfer (paper Section 4).

"The coupling between the two packages currently occurs through a
transfer of binary files.  Not all the nodes running OMEN load the
Hamiltonian and overlap matrices, but only those necessary to gather all
the unique parts of H and S.  The resulting data are then distributed to
all the available MPI ranks with MPI_Bcast."

This module implements that workflow: binary (compressed ``.npz``)
serialization of the image-resolved H/S with their structural metadata,
and a rank-0-loads + broadcast distribution over the in-process
communicator.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.errors import ConfigurationError

#: Format marker; bump on incompatible layout changes.
FORMAT_VERSION = 1


def save_matrices(path, rsm) -> None:
    """Write a :class:`RealSpaceMatrices` bundle to a binary file.

    Every periodic image's H_R and S_R goes in CSR-component form; the
    orbital offsets and image shifts make the file self-describing.
    """
    payload = {
        "format_version": np.array(FORMAT_VERSION),
        "offsets": np.asarray(rsm.offsets),
        "images": np.array([list(k) for k in rsm.images], dtype=np.int64),
    }
    for i, (shift, (h, s)) in enumerate(rsm.images.items()):
        for tag, mat in (("h", h), ("s", s)):
            csr = sp.csr_matrix(mat)
            payload[f"{tag}{i}_data"] = csr.data
            payload[f"{tag}{i}_indices"] = csr.indices
            payload[f"{tag}{i}_indptr"] = csr.indptr
    np.savez_compressed(path, **payload)


def load_matrices(path):
    """Load a bundle written by :func:`save_matrices`.

    Returns ``(images, offsets)`` with the same layout as
    :class:`~repro.hamiltonian.builder.RealSpaceMatrices` — the consumer
    (OMEN side) does not need the structure/basis objects, exactly like
    the paper's binary hand-off.
    """
    with np.load(path) as f:
        version = int(f["format_version"])
        if version != FORMAT_VERSION:
            raise ConfigurationError(
                f"matrix file format {version} unsupported "
                f"(expected {FORMAT_VERSION})")
        offsets = f["offsets"]
        norb = int(offsets[-1])
        images = {}
        for i, shift in enumerate(f["images"]):
            mats = []
            for tag in ("h", "s"):
                mats.append(sp.csr_matrix(
                    (f[f"{tag}{i}_data"], f[f"{tag}{i}_indices"],
                     f[f"{tag}{i}_indptr"]), shape=(norb, norb)))
            images[tuple(int(x) for x in shift)] = tuple(mats)
    return images, offsets


def distribute_matrices(comm, path):
    """The OMEN input stage on one rank: root loads, everyone receives.

    Only rank 0 touches the file system (the "nodes necessary to gather
    the unique parts"); the bundle then reaches every rank via the
    broadcast collective, after which each rank can assemble its own
    H(k), S(k).

    Returns ``(images, offsets)`` on every rank.
    """
    if comm.rank == 0:
        data = load_matrices(path)
    else:
        data = None
    return comm.bcast(data, root=0)
