"""Device-level matrix preparation: the OMEN input stage.

Combines structure ordering, matrix assembly, k-space folding, NBW
detection, lead-block extraction, and supercell folding into the single
object the transport solvers consume — the equivalent of OMEN's setup
phase after loading the CP2K binary files.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.hamiltonian.builder import build_matrices
from repro.hamiltonian.folding import fold_block_sizes, fold_lead_blocks
from repro.hamiltonian.kspace import assemble_k
from repro.hamiltonian.partition import (
    block_bandwidth,
    block_sizes_from_slabs,
    to_block_tridiagonal,
)
from repro.linalg import BlockTridiagonalMatrix
from repro.structure.slabs import assign_slabs, order_by_slab
from repro.utils.errors import ConfigurationError


@dataclass
class LeadBlocks:
    """Contact-cell blocks of one lead.

    ``h_cells[l]``/``s_cells[l]`` are the per-unit-cell blocks H_{q,q+l}
    (Eq. 6) for l = 0..NBW; ``h00/h01/s00/s01`` the supercell-folded
    nearest-neighbour form used to build the boundary self-energy.
    """

    h_cells: list
    s_cells: list
    h00: np.ndarray
    h01: np.ndarray
    s00: np.ndarray
    s01: np.ndarray

    @property
    def nbw(self) -> int:
        return len(self.h_cells) - 1

    @property
    def cell_size(self) -> int:
        return self.h_cells[0].shape[0]

    @property
    def folded_size(self) -> int:
        return self.h00.shape[0]


@dataclass
class DeviceMatrices:
    """Everything the transport solvers need for one (structure, k) pair."""

    structure: object
    basis: object
    kpoint: tuple
    hmat: sp.csr_matrix
    smat: sp.csr_matrix
    cell_sizes: np.ndarray      # orbitals per unit-cell slab (unfolded)
    block_sizes: list           # folded (block-tridiagonal) sizes
    lead: LeadBlocks            # identical left/right leads (flat-band)
    atom_slab: np.ndarray       # slab index per (ordered) atom
    orbital_offsets: np.ndarray

    @property
    def num_orbitals(self) -> int:
        return self.hmat.shape[0]

    @property
    def num_cells(self) -> int:
        return len(self.cell_sizes)

    @property
    def num_blocks(self) -> int:
        return len(self.block_sizes)

    def h_blocks(self) -> BlockTridiagonalMatrix:
        return to_block_tridiagonal(self.hmat, self.block_sizes)

    def s_blocks(self) -> BlockTridiagonalMatrix:
        return to_block_tridiagonal(self.smat, self.block_sizes)

    def a_matrix(self, energy: float) -> BlockTridiagonalMatrix:
        """A(E) = E*S - H as block-tridiagonal (complex), Eq. (5) LHS
        before the boundary self-energy is subtracted."""
        s = self.s_blocks()
        h = self.h_blocks()
        return s.scale_add(complex(energy), h, -1.0)

    def with_potential(self, v_atom: np.ndarray) -> "DeviceMatrices":
        """Return a copy with an electrostatic potential applied.

        ``v_atom[i]`` is the potential energy shift (eV) at atom i.  In a
        non-orthogonal basis a local potential enters as
        H'_{mu nu} = H_{mu nu} + (V_i + V_j)/2 * S_{mu nu}, which keeps H'
        Hermitian and reduces to a diagonal shift for S = 1.

        The caller must keep the potential flat over the contact cells —
        otherwise the lead blocks stored here would no longer describe the
        actual boundary (the same requirement OMEN's Poisson solver
        enforces with Neumann conditions at the contacts).
        """
        v_atom = np.asarray(v_atom, dtype=float)
        if v_atom.shape != (self.structure.num_atoms,):
            raise ConfigurationError(
                "v_atom must have one entry per (ordered) atom")
        offs = self.orbital_offsets
        v_orb = np.repeat(v_atom, np.diff(offs))
        coo = sp.coo_matrix(self.smat)
        vmean = 0.5 * (v_orb[coo.row] + v_orb[coo.col])
        shift = sp.csr_matrix((coo.data * vmean, (coo.row, coo.col)),
                              shape=self.smat.shape)
        new_h = (self.hmat + shift).tocsr()
        return DeviceMatrices(
            structure=self.structure, basis=self.basis, kpoint=self.kpoint,
            hmat=new_h, smat=self.smat, cell_sizes=self.cell_sizes,
            block_sizes=self.block_sizes, lead=self.lead,
            atom_slab=self.atom_slab, orbital_offsets=self.orbital_offsets)


def extract_lead_blocks(hk, sk, cell_sizes, nbw: int, q: int = 0):
    """Cut the per-cell lead blocks H_{q,q+l}, S_{q,q+l}, l = 0..NBW."""
    offs = np.concatenate([[0], np.cumsum(cell_sizes)])
    if q + nbw >= len(cell_sizes):
        raise ConfigurationError(
            f"need at least {q + nbw + 1} cells to extract NBW={nbw} blocks")
    h_cells, s_cells = [], []
    hk = sp.csr_matrix(hk)
    sk = sp.csr_matrix(sk)
    for l in range(nbw + 1):
        rs = slice(offs[q], offs[q + 1])
        cs = slice(offs[q + l], offs[q + l + 1])
        h_cells.append(np.asarray(hk[rs, cs].todense()))
        s_cells.append(np.asarray(sk[rs, cs].todense()))
    return h_cells, s_cells


def build_device(structure, basis, num_cells: int,
                 kpoint=(0.0, 0.0)) -> DeviceMatrices:
    """Assemble a transport-ready device from a lead-periodic structure.

    The structure must consist of ``num_cells`` translationally identical
    unit cells along x (as produced by the generators in
    :mod:`repro.structure`); the leads are taken to be semi-infinite
    continuations of the end cells, the standard flat-band setup of the
    paper's benchmarks.
    """
    if num_cells < 2:
        raise ConfigurationError("need at least 2 unit cells")
    slab = assign_slabs(structure, num_cells)
    ordered, _, slab = order_by_slab(structure, slab)
    rsm = build_matrices(ordered, basis)
    hk, sk = assemble_k(rsm, kpoint)

    cell_sizes = block_sizes_from_slabs(ordered, basis, slab, num_cells)
    nbw = max(block_bandwidth(hk, cell_sizes),
              block_bandwidth(sk, cell_sizes))
    if nbw == 0:
        nbw = 1  # decoupled cells: treat as trivially tridiagonal
    if num_cells < 2 * nbw:
        raise ConfigurationError(
            f"{num_cells} cells cannot hold 2 supercells at NBW={nbw}")

    _check_lead_periodicity(hk, cell_sizes, nbw)

    h_cells, s_cells = extract_lead_blocks(hk, sk, cell_sizes, nbw)
    h00, h01 = fold_lead_blocks(h_cells, nbw)
    s00, s01 = fold_lead_blocks(s_cells, nbw)
    lead = LeadBlocks(h_cells=h_cells, s_cells=s_cells,
                      h00=h00, h01=h01, s00=s00, s01=s01)

    block_sizes = fold_block_sizes(list(cell_sizes), nbw)
    offsets = np.concatenate(
        [[0], np.cumsum(basis.orbitals_per_atom(ordered))])
    return DeviceMatrices(
        structure=ordered, basis=basis, kpoint=tuple(kpoint),
        hmat=hk, smat=sk, cell_sizes=np.asarray(cell_sizes),
        block_sizes=block_sizes, lead=lead, atom_slab=slab,
        orbital_offsets=offsets)


def synthetic_device_from_lead(lead: LeadBlocks,
                               num_blocks: int) -> DeviceMatrices:
    """A pristine device made of ``num_blocks`` repeated lead supercells.

    Used for perfect-wire validation (T(E) = mode count) and for
    transport on scissor-corrected leads (Fig. 1b), where no atomistic
    structure backs the corrected blocks.  ``structure``-dependent
    methods (``with_potential``) are unavailable on the result.
    """
    if num_blocks < 2:
        raise ConfigurationError("need at least 2 blocks")
    n = lead.folded_size
    diag = [np.asarray(lead.h00)] * num_blocks
    upper = [np.asarray(lead.h01)] * (num_blocks - 1)
    lower = [np.asarray(lead.h01).conj().T] * (num_blocks - 1)
    hmat = BlockTridiagonalMatrix(diag, upper, lower).to_sparse()
    sdiag = [np.asarray(lead.s00)] * num_blocks
    supper = [np.asarray(lead.s01)] * (num_blocks - 1)
    slower = [np.asarray(lead.s01).conj().T] * (num_blocks - 1)
    smat = BlockTridiagonalMatrix(sdiag, supper, slower).to_sparse()
    return DeviceMatrices(
        structure=None, basis=None, kpoint=(0.0, 0.0),
        hmat=hmat, smat=smat,
        cell_sizes=np.full(num_blocks, n),
        block_sizes=[n] * num_blocks, lead=lead,
        atom_slab=np.arange(num_blocks),
        orbital_offsets=np.arange(0, n * num_blocks + 1, n))


def _check_lead_periodicity(hk, cell_sizes, nbw: int, atol=1e-9):
    """Verify the contact cells are translationally identical.

    The device interior may be arbitrary (disorder, Li insertion, ...) —
    only the cells feeding the lead-block extraction must repeat: cell 0
    must equal cell 1 block-for-block up to range NBW.  Structures must
    therefore provide at least NBW + 2 crystalline cells per contact
    (see e.g. the ``contact_cells`` parameter of the anode generator).
    """
    offs = np.concatenate([[0], np.cumsum(cell_sizes)])
    ncell = len(cell_sizes)
    if ncell < nbw + 2:
        return
    hk = sp.csr_matrix(hk)

    def blk(q, l):
        rs = slice(offs[q], offs[q + 1])
        cs = slice(offs[q + l], offs[q + l + 1])
        return np.asarray(hk[rs, cs].todense())

    for l in range(nbw + 1):
        first = blk(0, l)
        second = blk(1, l)
        if first.shape != second.shape:
            raise ConfigurationError(
                f"contact cells 0 and 1 differ in size "
                f"({first.shape} vs {second.shape}); the lead region "
                f"must be translationally periodic")
        err = np.max(np.abs(first - second)) if first.size else 0.0
        if err > atol:
            raise ConfigurationError(
                f"lead cells are not translationally identical "
                f"(block l={l} differs by {err:.2e}); transport "
                f"requires periodic contact cells")
