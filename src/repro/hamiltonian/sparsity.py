"""Sparsity analytics — reproduces the paper's Fig. 3 comparison.

The figure shows that the contracted-Gaussian (DFT) Hamiltonian carries
about two orders of magnitude more non-zero entries than the tight-binding
one for the same UTBFET, which is *the* motivation for SplitSolve: OMEN's
tight-binding-tuned solvers stop performing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


@dataclass
class SparsityReport:
    """Non-zero statistics of one Hamiltonian."""

    basis_name: str
    num_atoms: int
    num_orbitals: int
    nnz: int
    nnz_per_row: float
    nnz_per_atom: float
    fill_fraction: float
    block_bandwidth: int

    def row(self) -> str:
        return (f"{self.basis_name:>6s}  atoms={self.num_atoms:<7d} "
                f"norb={self.num_orbitals:<8d} nnz={self.nnz:<10d} "
                f"nnz/row={self.nnz_per_row:8.1f} "
                f"fill={self.fill_fraction:8.2e} NBW={self.block_bandwidth}")


def sparsity_report(mat, structure, basis, cell_sizes=None) -> SparsityReport:
    """Build a :class:`SparsityReport` for an assembled H or S."""
    from repro.hamiltonian.partition import block_bandwidth

    mat = sp.csr_matrix(mat)
    mat.eliminate_zeros()
    n = mat.shape[0]
    nnz = mat.nnz
    nbw = 0
    if cell_sizes is not None:
        nbw = block_bandwidth(mat, cell_sizes)
    return SparsityReport(
        basis_name=basis.name,
        num_atoms=structure.num_atoms,
        num_orbitals=n,
        nnz=int(nnz),
        nnz_per_row=nnz / n,
        nnz_per_atom=nnz / structure.num_atoms,
        fill_fraction=nnz / float(n) ** 2,
        block_bandwidth=int(nbw),
    )


def nnz_ratio(dft_report: SparsityReport, tb_report: SparsityReport) -> float:
    """DFT-to-TB non-zero ratio for the same structure (paper: ~100x)."""
    if dft_report.num_atoms != tb_report.num_atoms:
        raise ValueError("reports must describe the same structure")
    return dft_report.nnz / max(tb_report.nnz, 1)
