"""Traced production demo: one observable end-to-end simulation.

Runs a laptop-scale version of the paper's production loop — a Si
nanowire, one (or two) bias points, the self-consistent
Schroedinger-Poisson iteration, the Landauer current — under an
installed :class:`~repro.observability.SpanTracer` and a flop ledger,
then exports and cross-checks every observability artifact:

* a Chrome-trace/Perfetto JSON with one track per simulated node (the
  Fig. 12 activity timeline of a real run),
* the JSONL span event log ``python -m repro report`` re-reads,
* the Fig. 6 phase report and roofline annotation derived from spans,
* the reconciliation check: span-derived per-stage flops must equal the
  :class:`~repro.runtime.RunTelemetry` stage tables bit-for-bit and sum
  to the ledger total exactly; seconds agree to float-sum tolerance.

The demo deliberately runs fault-free and with a *fixed* energy batch
size: failed resilient attempts would emit stage spans whose flops never
merge into the ledger, and the ``"auto"`` batch-size probe solves one
point outside the telemetry path — either would (correctly) break the
exact reconciliation this demo asserts.

It also runs with ``use_arena=True``: the transport pipelines reuse
workspace-arena scratch buffers across energy batches.  The arena never
changes what the ledger records (the same kernels run on the same
shapes), so the flop/byte reconciliation stays exact, and the
``memory``-category arena instants feed ``python -m repro report
--memory``.
"""

from __future__ import annotations

import numpy as np

from repro.basis import tight_binding_set
from repro.core.energygrid import lead_band_structure
from repro.core.production import run_production
from repro.hamiltonian import build_device
from repro.hardware import TITAN
from repro.linalg import ledger_scope
from repro.observability.export import (write_chrome_trace,
                                        write_spans_jsonl)
from repro.observability.report import (phase_totals, reconcile,
                                        roofline_annotate)
from repro.observability.spans import SpanTracer, tracing
from repro.parallel import ThreadTaskRunner
from repro.runtime import ResilientTaskRunner
from repro.structure import silicon_nanowire
from repro.utils.errors import ConfigurationError


def traced_production_demo(num_nodes: int = 2, smoke: bool = False,
                           trace_path=None, jsonl_path=None,
                           energy_batch_size: int = 2,
                           backend: str = "thread",
                           kernel_backend: str | None = None,
                           result_store=None, live: bool = False,
                           live_log=None, fault_injector=None,
                           live_monitor=None) -> dict:
    """Run the traced production loop and collect every report input.

    Parameters
    ----------
    num_nodes : simulated nodes behind the runner (one Perfetto track
        group each).
    smoke : shrink to one bias point and one SCF iteration (CI budget).
    trace_path, jsonl_path : optional export destinations; exports are
        skipped when omitted.
    energy_batch_size : fixed batch size (> 0; never ``"auto"`` — see
        the module docstring).
    backend : ``"thread"`` (the default: a fault-protected
        :class:`~repro.runtime.ResilientTaskRunner` over threads) or
        ``"process"`` (the same resilient wrapper around a
        :class:`~repro.parallel.ProcessTaskRunner` — the guarded tasks
        ship a picklable ``_retry_run`` descriptor, so retries execute
        worker-side with the identical policy).  Either way the same
        reconciliation must hold exactly.
    kernel_backend : optional kernel-backend name for the transport
        solves (``"numpy"``, ``"mixed"``, ``"simulated-gpu"``,
        ``"numba"``, ``"auto"``).  Every backend keeps the same ledger
        discipline — one record per batched call — so the flop/byte
        reconciliation holds exactly under all of them, mixed precision
        included (its ``cgetrf``/``cgetrs`` records carry analytic flop
        counts and the actual low-precision bytes).
    result_store : optional path or :class:`~repro.cache.ResultStore` —
        the persistent cross-run result cache.  A warm re-run merges
        cached (k, E) results bitwise-identically; hits solve nothing,
        so they contribute zero flops and the exact reconciliation still
        holds (it then covers only the freshly solved remainder).
    live : enable the live telemetry bus: a
        :class:`~repro.observability.live.LiveMonitor` attaches to the
        tracer, a background thread folds the stream into the rolling
        view and runs the anomaly detectors / SLO rules while the run
        executes.  The end-of-run merge path is untouched — final
        telemetry/ledger stay bitwise identical to ``live=False``.
    live_log : optional JSONL path; with ``live``, the event stream is
        recorded there for ``python -m repro watch --replay``.
    fault_injector : optional
        :class:`~repro.runtime.faults.FaultInjector` handed to the
        resilient wrapper (e.g. a ``slow_nodes`` profile to exercise
        the live straggler detector).
    live_monitor : optional pre-built
        :class:`~repro.observability.live.LiveMonitor` (custom
        detectors, alert sinks); implies ``live``.

    Returns a dict with the production ``result``, the ``tracer``, its
    ``spans``/``metrics``, the runner ``telemetry``, the span-derived
    ``totals``, the ``roofline`` annotation against the Titan K20X, the
    ``reconciliation`` verdict, and the export paths (or ``None``).
    """
    wire = silicon_nanowire(diameter_nm=1.0, length_cells=4)
    basis = tight_binding_set()
    lead = build_device(wire, basis, num_cells=4).lead
    _, bands = lead_band_structure(lead, 11)
    e_lo = float(bands.min())
    e_window = (e_lo + 0.1, e_lo + (0.6 if smoke else 1.0))

    bias_points = [0.05] if smoke else [0.05, 0.1]
    scf_kwargs = dict(max_iter=1 if smoke else 2, tol=5e-3,
                      mixing=0.3, density_scale=0.02)

    if backend == "process":
        from repro.parallel import ProcessTaskRunner
        runner = ResilientTaskRunner(
            ProcessTaskRunner(num_workers=num_nodes), max_retries=1,
            fault_injector=fault_injector)
    elif backend == "thread":
        runner = ResilientTaskRunner(
            ThreadTaskRunner(num_workers=num_nodes), max_retries=1,
            fault_injector=fault_injector)
    else:
        raise ConfigurationError(
            f"demo backend must be 'thread' or 'process', got {backend!r}")
    tracer = SpanTracer()
    monitor = live_monitor
    if monitor is None and (live or live_log is not None):
        from repro.observability.live import LiveMonitor
        monitor = LiveMonitor(live_log=live_log)
    live_report = None
    if monitor is not None:
        monitor.attach(tracer, worker="node0")
        monitor.watch_registry(runner.telemetry.metrics, scope="telemetry")
        monitor.start()
    try:
        with tracing(tracer):
            with ledger_scope() as ledger:
                result = run_production(
                    wire, basis, num_cells=4, bias_points=bias_points,
                    mu_source=e_lo + 0.3, e_window=e_window,
                    num_k=1, num_nodes=num_nodes,
                    scf_kwargs=scf_kwargs, task_runner=runner,
                    energy_batch_size=int(energy_batch_size),
                    use_arena=True, kernel_backend=kernel_backend,
                    result_store=result_store)
    finally:
        if hasattr(runner, "close"):
            runner.close()
        if monitor is not None:
            live_report = monitor.stop()

    spans = tracer.records()
    totals = phase_totals(spans)
    check = reconcile(spans, runner.telemetry,
                      ledger_total_flops=ledger.total_flops,
                      ledger_total_bytes=ledger.total_bytes)
    # A fully warm result-store run solves nothing: no phase carries
    # flops, and there is nothing to place on a roofline.
    roofline = roofline_annotate(totals, TITAN) \
        if any(e["flops"] > 0 for e in totals.values()) else {}

    out = {
        "result": result,
        "tracer": tracer,
        "spans": spans,
        "metrics": tracer.metrics,
        "telemetry": runner.telemetry,
        "totals": totals,
        "roofline": roofline,
        "reconciliation": check,
        "ledger_flops": int(ledger.total_flops),
        "ledger_bytes": int(ledger.total_bytes),
        "num_nodes": int(num_nodes),
        "trace_path": None,
        "jsonl_path": None,
        "live": live_report,
        "live_monitor": monitor,
        "live_log": str(live_log) if live_log is not None else None,
    }
    if trace_path is not None:
        write_chrome_trace(spans, trace_path)
        out["trace_path"] = str(trace_path)
    if jsonl_path is not None:
        write_spans_jsonl(spans, jsonl_path)
        out["jsonl_path"] = str(jsonl_path)
    return out


def worker_tracks(spans) -> list:
    """Sorted worker names that carry stage spans (one Perfetto track
    group each) — the acceptance check for "one track per node"."""
    return sorted({sp.worker for sp in spans if sp.category == "stage"})
