"""Unified observability layer: spans, metrics, exporters, run reports.

One subsystem replacing the fragmented telemetry of earlier PRs:

1. :class:`SpanTracer` — a thread-safe span tracer with nested scopes
   (SCF iteration -> bias point -> (k, E-batch) task -> pipeline stage
   -> kernel event) carrying wall time, exact
   :class:`~repro.linalg.flops.FlopLedger` flops, worker/node id, and
   free-form attributes.  Near-zero overhead when no tracer is
   installed: every instrumentation site is one global read.
2. :class:`MetricsRegistry` — counters, gauges, histograms, labeled
   counters; snapshotable (JSON-serializable, checkpoint-persistable)
   and mergeable across runners without shared locks.
   :class:`~repro.runtime.RunTelemetry` is a view over one.
3. Exporters — JSONL event logs and Chrome-trace/Perfetto JSON whose
   per-node tracks regenerate the paper's Fig. 12 activity timeline
   from a real traced run (``python -m repro trace``).
4. Reports — Fig. 6-style phase breakdowns, per-node activity tables,
   and roofline annotation (achieved vs. attainable GF/s per stage via
   :mod:`repro.perfmodel.roofline`), plus the span/ledger/StageTrace
   reconciliation check.
5. Live telemetry — :class:`TelemetryBus` / :class:`LiveAggregator` /
   :class:`LiveMonitor` stream events *while the run executes*,
   :mod:`~repro.observability.anomaly` detectors raise typed
   :class:`Alert` records (stragglers, byte drift, fallback spikes,
   store-hit collapse, checkpoint overrun), and
   :mod:`~repro.observability.health` evaluates declarative SLO rules;
   ``python -m repro watch`` renders the dashboard live or from a
   recorded stream.
"""

from repro.observability.export import (read_spans_jsonl, to_chrome_trace,
                                        validate_chrome_trace,
                                        write_chrome_trace,
                                        write_spans_jsonl)
from repro.observability.metrics import (Counter, Gauge, Histogram,
                                         LabeledCounter, MetricsRegistry)
from repro.observability.report import (RooflineStage, activity_report,
                                        cache_report, cache_totals,
                                        memory_report, memory_totals,
                                        node_activity, phase_report,
                                        phase_totals, reconcile,
                                        roofline_annotate, roofline_report)
from repro.observability.spans import (CATEGORIES, Span, SpanTracer,
                                       current_tracer, install_tracer,
                                       spans_from_kernel_events, tracing)

__all__ = [
    "CATEGORIES",
    "Span",
    "SpanTracer",
    "current_tracer",
    "install_tracer",
    "spans_from_kernel_events",
    "tracing",
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "MetricsRegistry",
    "read_spans_jsonl",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
    "RooflineStage",
    "activity_report",
    "cache_report",
    "cache_totals",
    "memory_report",
    "memory_totals",
    "node_activity",
    "phase_report",
    "phase_totals",
    "reconcile",
    "roofline_annotate",
    "roofline_report",
    "traced_production_demo",
    "TelemetryBus",
    "BusPublisher",
    "LiveAggregator",
    "LiveMonitor",
    "comparable_telemetry",
    "read_stream_jsonl",
    "validate_stream",
    "write_stream_jsonl",
    "Alert",
    "default_detectors",
    "HealthMonitor",
    "SLORule",
    "SLOStatus",
    "render_dashboard",
    "watch_replay",
]

_LAZY = {
    "traced_production_demo": "repro.observability.demo",
    "TelemetryBus": "repro.observability.live",
    "BusPublisher": "repro.observability.live",
    "LiveAggregator": "repro.observability.live",
    "LiveMonitor": "repro.observability.live",
    "comparable_telemetry": "repro.observability.live",
    "read_stream_jsonl": "repro.observability.live",
    "validate_stream": "repro.observability.live",
    "write_stream_jsonl": "repro.observability.live",
    "Alert": "repro.observability.anomaly",
    "default_detectors": "repro.observability.anomaly",
    "HealthMonitor": "repro.observability.health",
    "SLORule": "repro.observability.health",
    "SLOStatus": "repro.observability.health",
    "render_dashboard": "repro.observability.watch",
    "watch_replay": "repro.observability.watch",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib
        mod = importlib.import_module(_LAZY[name])
        val = getattr(mod, name)
        globals()[name] = val
        return val
    raise AttributeError(
        f"module 'repro.observability' has no attribute {name!r}")
