"""Terminal dashboard for live or replayed telemetry streams.

``python -m repro watch --replay stream.jsonl`` renders the final state
of a recorded stream (frame-by-frame with ``--frames``); with
``--follow`` it tails a ``--live-log`` file another process is writing
and refreshes in place.  Rendering is plain text (no curses), so CI can
run it headless and assert on the output.
"""

from __future__ import annotations

import sys
import time

from repro.observability.live import (LiveMonitor, follow_stream_jsonl,
                                      read_stream_jsonl)

#: glyphs for SLO / alert states (ASCII, CI-log friendly)
OK_MARK = "ok"
FAIL_MARK = "FAIL"


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def render_dashboard(monitor: LiveMonitor, width: int = 78) -> str:
    """One text frame of the run's live state."""
    agg = monitor.aggregator
    rule = "=" * width
    thin = "-" * width
    lines = [rule,
             f" repro live  |  phase: {agg.current_phase or '-':<24s}"
             f" elapsed: {agg.elapsed():8.2f}s",
             f" events: {agg.events_seen:<8d} published: "
             f"{monitor.bus.published:<8d} dropped: {monitor.bus.dropped}",
             rule]

    lines.append(" nodes")
    lines.append(f"   {'node':<10s} {'done':>5s} {'fail':>5s} "
                 f"{'mean s':>9s} {'ema s':>9s} {'rate/s':>8s} "
                 f"{'open':>5s}")
    nodes = [n for w, n in sorted(agg.nodes.items()) if w != "monitor"]
    for node in nodes:
        lines.append(
            f"   {node.worker:<10s} {node.tasks_done:>5d} "
            f"{node.tasks_failed:>5d} {node.mean_latency():>9.4f} "
            f"{node.ema_latency:>9.4f} {node.ema_rate:>8.2f} "
            f"{node.open_spans:>5d}")
    if not nodes:
        lines.append("   (no worker events yet)")
    util = agg.utilization()
    lines.append(f"   utilization [{_bar(util)}] {util:6.1%}")
    lines.append(thin)

    lines.append(" stages")
    for name, tot in sorted(agg.stage_totals.items()):
        lines.append(
            f"   {name:<12s} n={tot['count']:<5d} "
            f"t={tot['seconds']:<9.3f}s flops={tot['flops']:<14d} "
            f"bytes={tot['bytes']}")
    if not agg.stage_totals:
        lines.append("   (no stage spans yet)")
    lines.append(thin)

    lines.append(f" alerts ({len(agg.alerts)})")
    for alert in agg.alerts[-8:]:
        lines.append(f"   [{alert.get('severity', '?'):<8s}] "
                     f"{alert.get('kind', '?'):<18s} "
                     f"{alert.get('message', '')[:44]}")
    if not agg.alerts:
        lines.append("   (none)")
    lines.append(thin)

    lines.append(" SLO")
    for status in monitor.slo_statuses:
        mark = OK_MARK if status.ok else FAIL_MARK
        value = "n/a" if status.value is None else f"{status.value:.4g}"
        lines.append(
            f"   [{mark:<4s}] {status.name:<18s} {value:>10s} "
            f"{status.op} {status.threshold:g}  {status.detail}")
    if not monitor.slo_statuses:
        lines.append("   (no rules)")
    lines.append(rule)
    return "\n".join(lines)


def watch_replay(path, frames: int = 1, out=None,
                 monitor: LiveMonitor | None = None) -> LiveMonitor:
    """Replay a recorded stream and render ``frames`` dashboard frames
    (evenly spaced through the stream; the last frame is always the
    final state).  Returns the monitor for programmatic inspection."""
    out = out if out is not None else sys.stdout
    monitor = monitor if monitor is not None else LiveMonitor()
    records = read_stream_jsonl(path)
    frames = max(int(frames), 1)
    if not records:
        monitor.replay([])
        out.write(render_dashboard(monitor) + "\n")
        return monitor
    step = max(len(records) // frames, 1)
    done = 0
    while done < len(records):
        chunk = records[done:done + step]
        done += len(chunk)
        monitor.replay(chunk)
        out.write(render_dashboard(monitor) + "\n")
    return monitor


def watch_follow(path, interval: float = 0.5, idle_timeout: float = 5.0,
                 out=None, clear: bool = True) -> LiveMonitor:
    """Tail a live-log file being written by a running trace and
    refresh the dashboard until the stream goes idle."""
    out = out if out is not None else sys.stdout
    monitor = LiveMonitor()
    pending = []
    last_render = 0.0
    for record in follow_stream_jsonl(path, idle_timeout=idle_timeout):
        pending.append(record)
        now = time.monotonic()
        if now - last_render >= interval:
            monitor.replay(pending)
            pending = []
            if clear:
                out.write("\x1b[2J\x1b[H")
            out.write(render_dashboard(monitor) + "\n")
            out.flush()
            last_render = now
    monitor.replay(pending)
    out.write(render_dashboard(monitor) + "\n")
    out.flush()
    return monitor
