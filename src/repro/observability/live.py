"""Live telemetry bus: watch a run *while it executes*.

The post-hoc observability layer (spans, metrics, reports) can only
explain a run after it finishes.  This module adds the streaming side:

* :class:`TelemetryBus` — a bounded, drop-counting ring buffer that
  instrumentation publishes events onto.  Publishing never blocks and
  never grows without bound; when the consumer falls behind, the oldest
  events are dropped *and counted*, so "zero dropped" is a checkable
  claim (CI asserts it on the smoke demo).
* :class:`BusPublisher` — the callable installed as
  ``SpanTracer.publisher``.  It stamps every event with the stream
  schema version, a per-publisher monotonic sequence number, the
  worker/node name, a wall-clock timestamp, and the producing PID, then
  hands it to a sink (the bus directly for threads; a multiprocessing
  heartbeat queue for spawned workers).
* :class:`LiveAggregator` — folds the interleaved worker streams into a
  consistent rolling view: per-node task latencies and EMA rates,
  per-stage cumulative seconds/flops/bytes, the latest cumulative
  metrics snapshot (int-exact: "metrics" events carry full snapshots
  with replace semantics, never deltas that could double-count), open
  spans, checkpoint marks, and alerts.
* :class:`LiveMonitor` — owns the bus, aggregator, anomaly detectors
  and SLO rules; a daemon thread polls the bus, optionally records the
  stream to JSONL (``--live-log``) for replay, and forwards fresh
  alerts to registered sinks (e.g.
  :meth:`~repro.parallel.balancer.DynamicLoadBalancer.apply_alerts`).

The rolling view is read-only over the run's state: the end-of-run
merge path (worker ledgers/metrics/spans absorbed at task completion)
is untouched, and the final telemetry stays bitwise identical with the
bus on or off — ``comparable_telemetry`` strips only wall-time-valued
metrics, which differ between any two runs regardless of the bus.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.utils.errors import ConfigurationError

#: stream schema version stamped on every event
STREAM_VERSION = 1

#: event types a conforming stream may contain
EVENT_TYPES = ("task-start", "task-end", "span-open", "span-close",
               "instant", "metrics", "alert")

#: metric-name suffixes that carry measured wall time — excluded from
#: bus-on/bus-off parity comparisons (wall times differ between any two
#: runs; everything else in the registry is deterministic)
TIME_METRIC_SUFFIXES = ("_time_s", "_seconds")

#: metric-name prefixes whose values depend on thread interleaving —
#: arena scratch-buffer reuse varies with which worker reaches the pool
#: first, so these gauges differ between any two runs, bus or not
SCHEDULING_METRIC_PREFIXES = ("arena_",)


# --------------------------------------------------------------------------
# Bus + publisher
# --------------------------------------------------------------------------

class TelemetryBus:
    """Bounded MPSC event buffer with exact drop accounting.

    Any number of threads may :meth:`publish`; one consumer
    :meth:`drain`\\ s.  When the buffer is full the *oldest* event is
    evicted (freshest data wins for a live view) and ``dropped``
    increments, so the consumer always knows whether its view is
    complete.
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ConfigurationError("bus capacity must be >= 1")
        self.capacity = int(capacity)
        self._events: deque = deque()
        self._lock = threading.Lock()
        self.published = 0
        self.dropped = 0

    def publish(self, event: dict) -> bool:
        """Append one event; returns False when an old event was evicted
        to make room (the publish itself always succeeds)."""
        with self._lock:
            self.published += 1
            if len(self._events) >= self.capacity:
                self._events.popleft()
                self.dropped += 1
                self._events.append(event)
                return False
            self._events.append(event)
            return True

    def drain(self) -> list:
        """Remove and return every buffered event (consumer side)."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class BusPublisher:
    """Stamps events with (v, seq, worker, t, pid) and forwards to a sink.

    The sequence number is monotonic *per publisher*, which is per
    (process, attach) — enough for consumers to detect reordering or
    loss within one worker's stream.  ``sink`` is any callable taking
    the event dict: ``TelemetryBus.publish`` in-process, or
    ``Queue.put`` across the process heartbeat pipe.
    """

    def __init__(self, sink, worker: str = "node0", clock=time.time):
        self.sink = sink
        self.worker = str(worker)
        self.clock = clock
        self._seq = itertools.count()

    def __call__(self, event: dict) -> None:
        event.setdefault("worker", self.worker)
        event["v"] = STREAM_VERSION
        event["seq"] = next(self._seq)
        event["t"] = self.clock()
        event["pid"] = os.getpid()
        self.sink(event)


# --------------------------------------------------------------------------
# Stream records (JSONL) + schema validation
# --------------------------------------------------------------------------

_REQUIRED_FIELDS = {
    "task-start": ("task_index",),
    "task-end": ("task_index", "seconds", "ok"),
    "span-open": ("name", "category"),
    "span-close": ("name", "category", "seconds"),
    "instant": ("name", "category"),
    "metrics": ("snapshot",),
    "alert": ("kind", "severity", "message"),
}


def validate_stream_record(record: dict, index: int = 0) -> None:
    """Raise :class:`ConfigurationError` unless ``record`` conforms to
    stream schema v1 (envelope stamps plus type-specific fields)."""
    where = f"stream record {index}"
    if not isinstance(record, dict):
        raise ConfigurationError(f"{where}: not an object")
    if record.get("v") != STREAM_VERSION:
        raise ConfigurationError(
            f"{where}: schema version {record.get('v')!r}, "
            f"expected {STREAM_VERSION}")
    etype = record.get("type")
    if etype not in EVENT_TYPES:
        raise ConfigurationError(f"{where}: unknown event type {etype!r}")
    for key, kinds in (("seq", int), ("pid", int),
                       ("t", (int, float)), ("worker", str)):
        if not isinstance(record.get(key), kinds) \
                or isinstance(record.get(key), bool):
            raise ConfigurationError(
                f"{where}: missing or mistyped envelope field {key!r}")
    for name in _REQUIRED_FIELDS[etype]:
        if name not in record:
            raise ConfigurationError(
                f"{where}: {etype} event missing field {name!r}")
    if etype == "metrics" and not isinstance(record["snapshot"], dict):
        raise ConfigurationError(f"{where}: metrics snapshot not a dict")


def validate_stream(records) -> int:
    """Validate every record and per-(pid, worker) seq monotonicity;
    returns the record count."""
    last_seq: dict = {}
    count = 0
    for index, record in enumerate(records):
        validate_stream_record(record, index)
        key = (record["pid"], record["worker"])
        prev = last_seq.get(key)
        if prev is not None and record["seq"] <= prev:
            raise ConfigurationError(
                f"stream record {index}: seq {record['seq']} not "
                f"monotonic for publisher {key} (last {prev})")
        last_seq[key] = record["seq"]
        count += 1
    return count


def write_stream_jsonl(events, path) -> int:
    """Write events to a JSONL stream file; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
            count += 1
    return count


def read_stream_jsonl(path) -> list:
    """Read a recorded JSONL stream back into event dicts."""
    events = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def follow_stream_jsonl(path, poll_s: float = 0.2, idle_timeout: float = 5.0):
    """Yield records from a stream file as they are appended (live tail).

    Stops after ``idle_timeout`` seconds without a new complete line —
    the "watch a live run from another terminal" transport.
    """
    deadline = time.monotonic() + idle_timeout
    with open(path, encoding="utf-8") as fh:
        buffer = ""
        while True:
            chunk = fh.readline()
            if chunk:
                buffer += chunk
                if buffer.endswith("\n"):
                    line = buffer.strip()
                    buffer = ""
                    if line:
                        deadline = time.monotonic() + idle_timeout
                        yield json.loads(line)
                continue
            if time.monotonic() >= deadline:
                return
            time.sleep(poll_s)


# --------------------------------------------------------------------------
# Rolling aggregation
# --------------------------------------------------------------------------

#: rolling-window length for per-node latency statistics
LATENCY_WINDOW = 256


@dataclass
class NodeState:
    """Rolling view of one worker/node assembled from its stream."""

    worker: str
    tasks_started: int = 0
    tasks_done: int = 0
    tasks_failed: int = 0
    busy_seconds: float = 0.0
    #: exponential moving average of task latency (seconds)
    ema_latency: float = 0.0
    #: exponential moving average of completion rate (tasks/second)
    ema_rate: float = 0.0
    last_seen: float = 0.0
    open_spans: int = 0
    latencies: deque = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW))

    def observe_latency(self, seconds: float, alpha: float = 0.3) -> None:
        self.latencies.append(float(seconds))
        if self.ema_latency <= 0.0:
            self.ema_latency = float(seconds)
        else:
            self.ema_latency += alpha * (float(seconds) - self.ema_latency)
        rate = 1.0 / max(float(seconds), 1e-9)
        if self.ema_rate <= 0.0:
            self.ema_rate = rate
        else:
            self.ema_rate += alpha * (rate - self.ema_rate)

    def mean_latency(self) -> float:
        return (sum(self.latencies) / len(self.latencies)
                if self.latencies else 0.0)

    def as_dict(self) -> dict:
        return {"worker": self.worker,
                "tasks_started": self.tasks_started,
                "tasks_done": self.tasks_done,
                "tasks_failed": self.tasks_failed,
                "busy_seconds": self.busy_seconds,
                "ema_latency": self.ema_latency,
                "ema_rate": self.ema_rate,
                "open_spans": self.open_spans,
                "mean_latency": self.mean_latency()}


class LiveAggregator:
    """Folds bus events into a consistent rolling view of the run.

    Counters stay int-exact because "metrics" events carry *cumulative*
    registry snapshots with replace semantics (the parent registry
    already absorbs worker metrics at task completion, so the latest
    snapshot is the whole truth — no delta arithmetic to get wrong).
    All other state is windowed/EMA per node.  Consuming an event never
    mutates the run itself, so replaying a recorded stream rebuilds the
    identical view.
    """

    def __init__(self):
        self.nodes: dict = {}
        self.events_seen = 0
        self.by_type: dict = {}
        #: latest cumulative MetricsRegistry snapshot per scope
        #: (replace semantics; scope "tracer" is the installed tracer's
        #: registry, "telemetry" the resilient runner's)
        self.metrics_scopes: dict = {}
        #: cumulative per-stage {count, seconds, flops, bytes}
        self.stage_totals: dict = {}
        #: cumulative measured/predicted bytes per stage (drift input)
        self.stage_bytes: dict = {}
        self.alerts: list = []
        #: straggler delays injected but not slept (paired to task-end)
        self.pending_delay: dict = {}
        self.checkpoint_marks: list = []
        self.current_phase = ""
        self.t_first = None
        self.t_last = None
        self.all_latencies: deque = deque(maxlen=4 * LATENCY_WINDOW)

    def node(self, worker: str) -> NodeState:
        state = self.nodes.get(worker)
        if state is None:
            state = self.nodes[worker] = NodeState(worker=str(worker))
        return state

    # -- event folding ------------------------------------------------------

    def consume(self, event: dict) -> None:
        self.events_seen += 1
        etype = event.get("type", "")
        self.by_type[etype] = self.by_type.get(etype, 0) + 1
        t = float(event.get("t", 0.0))
        if t:
            self.t_first = t if self.t_first is None else \
                min(self.t_first, t)
            self.t_last = t if self.t_last is None else max(self.t_last, t)
        node = self.node(event.get("worker", "node0"))
        node.last_seen = max(node.last_seen, t)
        handler = getattr(self, f"_on_{etype.replace('-', '_')}", None)
        if handler is not None:
            handler(event, node)

    def _on_task_start(self, event: dict, node: NodeState) -> None:
        node.tasks_started += 1

    def _on_task_end(self, event: dict, node: NodeState) -> None:
        seconds = float(event.get("seconds", 0.0))
        # Re-add injected-but-unslept straggler delay so the latency the
        # detectors see models the slowness the fault plan prescribed
        # even in fast simulated runs (real_sleep=False).
        seconds += self.pending_delay.pop(event.get("task_index"), 0.0)
        node.busy_seconds += seconds
        if event.get("ok", True):
            node.tasks_done += 1
        else:
            node.tasks_failed += 1
        node.observe_latency(seconds)
        self.all_latencies.append(seconds)

    def _on_span_open(self, event: dict, node: NodeState) -> None:
        node.open_spans += 1
        if event.get("category") in ("bias", "scf", "stage"):
            self.current_phase = event.get("name", "")

    def _on_span_close(self, event: dict, node: NodeState) -> None:
        node.open_spans = max(node.open_spans - 1, 0)
        if event.get("category") == "stage":
            name = event.get("name", "")
            totals = self.stage_totals.setdefault(
                name, {"count": 0, "seconds": 0.0, "flops": 0, "bytes": 0})
            totals["count"] += 1
            totals["seconds"] += float(event.get("seconds", 0.0))
            totals["flops"] += int(event.get("flops", 0))
            totals["bytes"] += int(event.get("bytes", 0))
            attrs = event.get("attrs") or {}
            predicted = attrs.get("predicted_bytes")
            if predicted is not None:
                pair = self.stage_bytes.setdefault(
                    name, {"measured": 0, "predicted": 0})
                pair["measured"] += int(event.get("bytes", 0))
                pair["predicted"] += int(predicted)

    def _on_instant(self, event: dict, node: NodeState) -> None:
        name = event.get("name", "")
        attrs = event.get("attrs") or {}
        if name == "straggler-delay" and not attrs.get("slept", False):
            index = attrs.get("task_index")
            if index is not None:
                self.pending_delay[index] = \
                    self.pending_delay.get(index, 0.0) \
                    + float(attrs.get("delay_s", 0.0))
        elif event.get("category") == "checkpoint":
            self.checkpoint_marks.append(float(event.get("t", 0.0)))

    def _on_metrics(self, event: dict, node: NodeState) -> None:
        if event.get("cumulative", True):
            self.metrics_scopes[event.get("scope", "tracer")] = \
                event.get("snapshot") or {}

    @property
    def metrics_snapshot(self) -> dict:
        """The tracer-scope snapshot (the most common query surface)."""
        return self.metrics_scopes.get("tracer", {})

    def _on_alert(self, event: dict, node: NodeState) -> None:
        self.alerts.append(event)

    # -- derived views ------------------------------------------------------

    def elapsed(self) -> float:
        if self.t_first is None or self.t_last is None:
            return 0.0
        return max(self.t_last - self.t_first, 0.0)

    def utilization(self) -> float:
        """Busy fraction across nodes: sum(busy) / (elapsed * n_nodes)."""
        elapsed = self.elapsed()
        if not self.nodes or elapsed <= 0.0:
            return 1.0
        busy = sum(n.busy_seconds for n in self.nodes.values())
        return min(busy / (elapsed * len(self.nodes)), 1.0)

    def latency_quantile(self, q: float):
        """Empirical quantile of recent task latencies (None when no
        task completed yet)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile q must be in [0, 1]")
        if not self.all_latencies:
            return None
        ordered = sorted(self.all_latencies)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def counter_value(self, name: str) -> int:
        """Cumulative counter value across scopes.

        The max over scopes, not the sum: the process backend mirrors
        worker metrics into *both* the tracer registry and the runner
        telemetry, so summing would double-count every mirrored
        counter, while the larger copy is always the complete one.
        """
        best = 0
        for snap in self.metrics_scopes.values():
            entry = snap.get(name)
            if entry and entry.get("kind") == "counter":
                best = max(best, entry.get("value", 0))
        return best

    def labeled_total(self, name: str, tenant: str | None = None):
        """Summed labeled-counter total (max across scopes, as above).

        ``tenant`` restricts the sum to one tenant's namespaced keys
        (``"tenant|label"``; untenanted keys count under tenant ``""``).
        """
        from repro.observability.metrics import TENANT_SEP
        best = 0
        for snap in self.metrics_scopes.values():
            entry = snap.get(name)
            if not entry or entry.get("kind") != "labeled_counter":
                continue
            total = 0
            for key, value in entry.get("values", {}).items():
                if tenant is not None:
                    owner, sep, _ = key.partition(TENANT_SEP)
                    if not sep:
                        owner = ""
                    if owner != tenant:
                        continue
                total += value
            best = max(best, total)
        return best

    def summary(self) -> dict:
        return {"events": self.events_seen,
                "by_type": dict(self.by_type),
                "elapsed_s": self.elapsed(),
                "utilization": self.utilization(),
                "phase": self.current_phase,
                "nodes": {w: n.as_dict()
                          for w, n in sorted(self.nodes.items())},
                "stage_totals": {k: dict(v) for k, v in
                                 sorted(self.stage_totals.items())},
                "alerts": len(self.alerts),
                "checkpoints": len(self.checkpoint_marks)}


# --------------------------------------------------------------------------
# Monitor (bus consumer + detector/SLO driver)
# --------------------------------------------------------------------------

class LiveMonitor:
    """Drives the live side of a run: drains the bus, folds the stream
    into the aggregator, runs anomaly detectors and SLO rules, records
    the stream to JSONL, and forwards alerts to sinks.

    Use either as polled-from-outside (call :meth:`poll`) or with the
    background daemon thread (:meth:`start` / :meth:`stop`).  The final
    :meth:`stop` performs a last drain so no event is lost between the
    end of the run and the report.
    """

    def __init__(self, bus: TelemetryBus | None = None, detectors=None,
                 health=None, interval: float = 0.05, live_log=None,
                 clock=time.time):
        if detectors is None:
            from repro.observability.anomaly import default_detectors
            detectors = default_detectors()
        if health is None:
            from repro.observability.health import HealthMonitor
            health = HealthMonitor.default()
        self.bus = bus if bus is not None else TelemetryBus()
        self.aggregator = LiveAggregator()
        self.detectors = list(detectors)
        self.health = health
        self.interval = float(interval)
        self.live_log = live_log
        self.clock = clock
        #: callables receiving each fresh batch of Alert objects
        self.alert_sinks: list = []
        self.slo_statuses: list = []
        self.records_written = 0
        self._monitor_publisher = BusPublisher(
            self.bus.publish, worker="monitor", clock=clock)
        #: extra MetricsRegistry objects snapshotted each poll, keyed by
        #: scope name (see :meth:`watch_registry`)
        self._registries: dict = {}
        self._tracer = None
        self._log_fh = None
        self._poll_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = None

    # -- wiring -------------------------------------------------------------

    def attach(self, tracer, worker: str = "node0") -> BusPublisher:
        """Install a publisher on ``tracer`` so its spans/instants (and
        anything calling ``tracer.publish``) land on this monitor's bus."""
        publisher = BusPublisher(self.bus.publish, worker=worker,
                                 clock=self.clock)
        tracer.publisher = publisher
        self._tracer = tracer
        return publisher

    def detach(self) -> None:
        if self._tracer is not None:
            self._tracer.publisher = None
            self._tracer = None

    def add_alert_sink(self, sink) -> None:
        self.alert_sinks.append(sink)

    def watch_registry(self, registry, scope: str = "telemetry") -> None:
        """Snapshot an additional :class:`MetricsRegistry` each poll as a
        cumulative ``metrics`` event under ``scope``.  The thread backend
        books ``wasted_flops``/``stage_flops`` only into the resilient
        runner's telemetry registry, so watch that one to feed the
        ``wasted_flop_budget`` SLO (the aggregator reads the max across
        scopes, so mirrored counters never double-count)."""
        self._registries[str(scope)] = registry

    # -- polling ------------------------------------------------------------

    def _record(self, event: dict) -> None:
        if self.live_log is None:
            return
        if self._log_fh is None:
            self._log_fh = open(self.live_log, "w", encoding="utf-8")
        self._log_fh.write(json.dumps(event, sort_keys=True) + "\n")
        self.records_written += 1

    def poll(self) -> int:
        """One drain-fold-detect-evaluate cycle; returns the number of
        events consumed (bus events plus fresh alerts)."""
        with self._poll_lock:
            if self._tracer is not None:
                self._monitor_publisher(
                    {"type": "metrics", "cumulative": True,
                     "scope": "tracer",
                     "snapshot": self._tracer.metrics.snapshot()})
            for scope, registry in self._registries.items():
                self._monitor_publisher(
                    {"type": "metrics", "cumulative": True, "scope": scope,
                     "snapshot": registry.snapshot()})
            events = self.bus.drain()
            for event in events:
                self._record(event)
                self.aggregator.consume(event)
            fresh = []
            for detector in self.detectors:
                fresh.extend(detector.update(self.aggregator))
            for alert in fresh:
                event = dict(alert.as_dict())
                event["type"] = "alert"
                self._monitor_publisher(event)
            # alert events were just published onto the bus; fold them
            # immediately so report()/dashboards see them this cycle
            for event in self.bus.drain():
                self._record(event)
                self.aggregator.consume(event)
            if fresh:
                for sink in self.alert_sinks:
                    sink(fresh)
            if self.health is not None:
                self.slo_statuses = self.health.evaluate(self.aggregator)
            return len(events) + len(fresh)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.poll()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-live-monitor", daemon=True)
        self._thread.start()

    def stop(self) -> dict:
        """Stop polling, drain the tail of the stream, close the log;
        returns the final :meth:`report`."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=10.0)
            self._thread = None
        self.poll()
        self.detach()
        if self._log_fh is not None:
            self._log_fh.close()
            self._log_fh = None
        return self.report()

    # -- results ------------------------------------------------------------

    def report(self) -> dict:
        return {"events": self.aggregator.events_seen,
                "published": self.bus.published,
                "dropped": self.bus.dropped,
                "records_written": self.records_written,
                "alerts": [dict(a) for a in self.aggregator.alerts],
                "slo": [s.as_dict() for s in self.slo_statuses],
                "summary": self.aggregator.summary()}

    def replay(self, records) -> dict:
        """Fold a recorded stream (dicts) through the aggregator,
        detectors, and SLO rules — the ``watch --replay`` path.

        Recorded ``alert`` events are *skipped*: they are derived data
        the live monitor produced, and this monitor's detectors
        re-derive them from the raw stream (so a replay reproduces the
        live verdicts instead of double-counting them).
        """
        for record in records:
            if record.get("type") == "alert":
                continue
            self.aggregator.consume(record)
            for detector in self.detectors:
                for alert in detector.update(self.aggregator):
                    event = dict(alert.as_dict())
                    event["type"] = "alert"
                    self._monitor_publisher(event)
            for event in self.bus.drain():
                self.aggregator.consume(event)
        if self.health is not None:
            self.slo_statuses = self.health.evaluate(self.aggregator)
        return self.report()


# --------------------------------------------------------------------------
# Parity helper
# --------------------------------------------------------------------------

def comparable_telemetry(snapshot: dict) -> dict:
    """A metrics snapshot with run-to-run-noisy metrics removed.

    Final bus-on vs. bus-off telemetry must be bitwise identical in
    every deterministic metric; this filter drops only what differs
    between *any* two runs regardless of the bus — measured wall times
    (``*_time_s``, ``*_seconds`` histograms) and the
    scheduling-dependent arena pool gauges (``arena_*``: scratch reuse
    varies with worker interleaving).  It never touches flop, byte, or
    count metrics.
    """
    out = {}
    for name, entry in snapshot.items():
        if name.endswith(TIME_METRIC_SUFFIXES) \
                or name.startswith(SCHEDULING_METRIC_PREFIXES):
            continue
        out[name] = entry
    return out
