"""Span-derived run reports: phase breakdown, node activity, roofline.

Everything here consumes plain :class:`~repro.observability.spans.Span`
lists — live from a tracer or re-read from a JSONL export — and
produces the three views the paper tells its performance story with:

* :func:`phase_totals` / :func:`phase_report` — the Fig. 6 per-phase
  time/flop breakdown, derived from stage spans instead of the bespoke
  ``fig6_phases`` bookkeeping,
* :func:`node_activity` / :func:`activity_report` — the Fig. 12
  per-node activity timeline summary (busy seconds, flops, span),
* :func:`roofline_annotate` / :func:`roofline_report` — achieved vs.
  attainable GF/s per stage, joining span flops/bytes/seconds against
  :mod:`repro.perfmodel.roofline` and a device's peaks.

:func:`reconcile` is the acceptance check: span-derived phase totals
must match the :class:`~repro.pipeline.TaskTrace` tables bit-for-bit in
flops and within float-sum tolerance in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import GpuSpec, MachineSpec
from repro.perfmodel.roofline import RooflinePoint
from repro.utils.errors import ConfigurationError


def phase_totals(spans, category: str = "stage") -> dict:
    """Aggregate spans of one category by name.

    Returns ``{name: {"seconds", "flops", "bytes", "count"}}`` in
    first-seen order.  For ``category="stage"`` this is the Fig. 6
    phase table; per-stage flops are exact integer sums of the stage
    probe ledgers, so they reconcile bit-for-bit with the surrounding
    :class:`~repro.linalg.flops.FlopLedger`.
    """
    out: dict = {}
    for sp in spans:
        if sp.category != category:
            continue
        entry = out.setdefault(sp.name, {"seconds": 0.0, "flops": 0,
                                         "bytes": 0, "count": 0})
        entry["seconds"] += sp.seconds
        entry["flops"] += int(sp.flops)
        entry["bytes"] += int(sp.bytes_moved)
        entry["count"] += 1
    return out


def _fmt_ai(flops: int, nbytes: int) -> str:
    """Arithmetic-intensity cell: flop/B, or a dash without traffic."""
    if nbytes <= 0:
        return "     --"
    return f"{flops / nbytes:7.1f}"


def phase_report(totals: dict, title: str = "Phase breakdown "
                 "(span-derived, Fig. 6 view)") -> str:
    lines = [title]
    total_s = sum(e["seconds"] for e in totals.values()) or 1.0
    for name, e in totals.items():
        lines.append(f"  {name:<10s} {e['seconds'] * 1e3:10.2f} ms "
                     f"({e['seconds'] / total_s:6.1%})  "
                     f"{e['flops']:>16,d} flop  "
                     f"{e['bytes'] / 1e6:9.1f} MB  "
                     f"AI {_fmt_ai(e['flops'], e['bytes'])} flop/B  "
                     f"x{e['count']}")
    total_f = sum(e["flops"] for e in totals.values())
    total_b = sum(e["bytes"] for e in totals.values())
    lines.append(f"  {'total':<10s} {total_s * 1e3:10.2f} ms "
                 f"{'':>9s}{total_f:>16,d} flop  "
                 f"{total_b / 1e6:9.1f} MB  "
                 f"AI {_fmt_ai(total_f, total_b)} flop/B")
    return "\n".join(lines)


def node_activity(spans, category: str = "stage") -> dict:
    """Per-worker activity summary — the Fig. 12 timeline, tabulated.

    Returns ``{worker: {"busy_s", "span_s", "flops", "spans",
    "by_name"}}``; ``span_s`` is last-stop minus first-start on that
    worker, so ``busy_s / span_s`` is the track's utilization.
    """
    picked = [sp for sp in spans if sp.category == category]
    if not picked:
        raise ConfigurationError(
            f"no {category!r} spans recorded; run under tracing()")
    out: dict = {}
    for sp in picked:
        entry = out.setdefault(sp.worker, {
            "busy_s": 0.0, "flops": 0, "spans": 0, "by_name": {},
            "_t0": sp.t_start, "_t1": sp.t_stop})
        entry["busy_s"] += sp.seconds
        entry["flops"] += int(sp.flops)
        entry["spans"] += 1
        entry["by_name"][sp.name] = \
            entry["by_name"].get(sp.name, 0.0) + sp.seconds
        entry["_t0"] = min(entry["_t0"], sp.t_start)
        entry["_t1"] = max(entry["_t1"], sp.t_stop)
    for entry in out.values():
        entry["span_s"] = max(entry.pop("_t1") - entry.pop("_t0"), 0.0)
    return dict(sorted(out.items()))


def activity_report(activity: dict) -> str:
    lines = ["Per-node activity (span-derived, Fig. 12 view)"]
    for worker, e in activity.items():
        util = e["busy_s"] / e["span_s"] if e["span_s"] > 0 else 0.0
        names = ", ".join(f"{n}:{t * 1e3:.0f}ms"
                          for n, t in sorted(e["by_name"].items()))
        lines.append(f"  {worker:<8s} {e['busy_s'] * 1e3:9.1f} ms busy "
                     f"/ {e['span_s'] * 1e3:9.1f} ms span "
                     f"({util:5.1%})  {e['flops'] / 1e6:9.1f} MFLOP  "
                     f"[{names}]")
    return "\n".join(lines)


@dataclass
class RooflineStage:
    """One phase's measured rate joined against a device roofline."""

    name: str
    seconds: float
    point: RooflinePoint

    @property
    def achieved_gflops(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.point.flops / self.seconds / 1e9

    @property
    def attainable_gflops(self) -> float:
        return self.point.attainable_flops / 1e9

    @property
    def efficiency(self) -> float:
        """Achieved / roofline-attainable (can exceed 1 when the real
        host outruns the simulated device's calibrated peak)."""
        att = self.point.attainable_flops
        return self.achieved_gflops * 1e9 / att if att > 0 else 0.0

    def row(self) -> str:
        kind = "compute" if self.point.compute_bound else "memory"
        return (f"{self.name:<10s} AI {self.point.arithmetic_intensity:8.1f}"
                f" flop/B ({kind}-bound)  achieved "
                f"{self.achieved_gflops:9.2f} GF/s  attainable "
                f"{self.attainable_gflops:9.1f} GF/s  "
                f"({self.efficiency:6.1%})")


def _as_gpu(device) -> GpuSpec:
    if isinstance(device, GpuSpec):
        return device
    if isinstance(device, MachineSpec):
        return device.node.gpu
    spec = getattr(device, "spec", None)      # SimulatedMachine
    if spec is not None:
        return spec.node.gpu
    raise ConfigurationError(
        "device must be a GpuSpec, MachineSpec, or SimulatedMachine")


def roofline_annotate(totals: dict, device) -> dict:
    """Join phase totals against a device roofline.

    ``totals`` is :func:`phase_totals` output; ``device`` is a
    :class:`GpuSpec`, :class:`MachineSpec`, or
    :class:`~repro.hardware.SimulatedMachine`.  Phases without flops
    are skipped (nothing to place on a roofline).
    """
    gpu = _as_gpu(device)
    peak = gpu.peak_dp_gflops * 1e9
    bw = gpu.bandwidth_gb_s * 1e9
    out = {}
    for name, e in totals.items():
        if e["flops"] <= 0:
            continue
        point = RooflinePoint(name=name, flops=int(e["flops"]),
                              bytes_moved=int(e["bytes"]),
                              device_peak_flops=peak,
                              device_bandwidth=bw)
        out[name] = RooflineStage(name=name, seconds=float(e["seconds"]),
                                  point=point)
    if not out:
        raise ConfigurationError("no phase carries flops to annotate")
    return out


def roofline_report(annotated: dict, device_name: str = "") -> str:
    lines = [f"Roofline annotation per stage"
             + (f" (vs {device_name})" if device_name else "")]
    lines += ["  " + stage.row() for stage in annotated.values()]
    return "\n".join(lines)


def reconcile(spans, traces, ledger_total_flops: int | None = None,
              ledger_total_bytes: int | None = None) -> dict:
    """Check span-derived phase totals against the TaskTrace tables.

    ``traces`` is a list of :class:`~repro.pipeline.TaskTrace` objects,
    or a :class:`~repro.runtime.RunTelemetry` (whose aggregated
    ``stage_time_s``/``stage_flops``/``stage_bytes`` tables are the same
    sums).  Returns ``{"flops_exact", "bytes_exact", "seconds_close",
    "span_flops", "trace_flops", "ledger_flops", "span_bytes",
    "trace_bytes", "ledger_bytes", "max_seconds_delta", "per_stage"}``.
    Flops AND bytes must match bit-for-bit per stage (and, when ledger
    totals are given, in aggregate); seconds must agree within float-sum
    tolerance — batched stages carve their wall time with
    largest-remainder apportionment, so per-stage sums differ from the
    batch wall time only by rounding.
    """
    span_totals = phase_totals(spans)
    trace_totals: dict = {}
    if hasattr(traces, "stage_flops") and hasattr(traces, "stage_time_s"):
        times = traces.stage_time_s
        byte_table = dict(getattr(traces, "stage_bytes", {}) or {})
        for name, flops in traces.stage_flops.items():
            trace_totals[name] = {"seconds": float(times.get(name, 0.0)),
                                  "flops": int(flops),
                                  "bytes": int(byte_table.get(name, 0))}
    else:
        for tr in traces:
            if tr is None:
                continue
            for st in tr.stages:
                e = trace_totals.setdefault(
                    st.name, {"seconds": 0.0, "flops": 0, "bytes": 0})
                e["seconds"] += st.seconds
                e["flops"] += int(st.flops)
                e["bytes"] += int(st.meta.get("bytes", 0))

    per_stage = {}
    max_dt = 0.0
    flops_exact = set(span_totals) == set(trace_totals)
    bytes_exact = flops_exact
    for name in set(span_totals) | set(trace_totals):
        se = span_totals.get(name, {"seconds": 0.0, "flops": 0, "bytes": 0})
        te = trace_totals.get(name, {"seconds": 0.0, "flops": 0, "bytes": 0})
        dt = abs(se["seconds"] - te["seconds"])
        exact = se["flops"] == te["flops"]
        b_exact = se["bytes"] == te["bytes"]
        flops_exact = flops_exact and exact
        bytes_exact = bytes_exact and b_exact
        max_dt = max(max_dt, dt)
        per_stage[name] = {"flops_exact": exact, "bytes_exact": b_exact,
                           "seconds_delta": dt}

    span_flops = sum(e["flops"] for e in span_totals.values())
    trace_flops = sum(e["flops"] for e in trace_totals.values())
    span_bytes = sum(e["bytes"] for e in span_totals.values())
    trace_bytes = sum(e["bytes"] for e in trace_totals.values())
    total_s = sum(e["seconds"] for e in span_totals.values())
    tol = 1e-9 * max(total_s, 1.0) * max(len(per_stage), 1) * 64
    if ledger_total_flops is not None:
        flops_exact = flops_exact and span_flops == int(ledger_total_flops)
    if ledger_total_bytes is not None:
        bytes_exact = bytes_exact and span_bytes == int(ledger_total_bytes)
    return {"flops_exact": bool(flops_exact),
            "bytes_exact": bool(bytes_exact),
            "seconds_close": bool(max_dt <= tol),
            "span_flops": int(span_flops),
            "trace_flops": int(trace_flops),
            "ledger_flops": (None if ledger_total_flops is None
                             else int(ledger_total_flops)),
            "span_bytes": int(span_bytes),
            "trace_bytes": int(trace_bytes),
            "ledger_bytes": (None if ledger_total_bytes is None
                             else int(ledger_total_bytes)),
            "max_seconds_delta": float(max_dt),
            "per_stage": per_stage}


def cache_totals(spans) -> dict:
    """Persistent-result-store view of a traced run.

    Aggregates the ``category="cache"`` instants the runner and the
    :class:`~repro.cache.ResultStore` emit: per-spectrum probe outcomes
    (hits/misses over the scheduled (k, E) points) and eviction sweeps.
    """
    probes = hits = misses = evictions = freed = 0
    for sp in spans:
        if sp.category != "cache":
            continue
        if sp.name == "result-store-probe":
            probes += 1
            hits += int(sp.attrs.get("hits", 0))
            misses += int(sp.attrs.get("misses", 0))
        elif sp.name == "result-store-evict":
            evictions += int(sp.attrs.get("removed", 0))
            freed += int(sp.attrs.get("freed_bytes", 0))
    total = hits + misses
    return {"probes": probes, "hits": hits, "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "evictions": evictions, "freed_bytes": freed}


def cache_report(spans) -> str:
    """Human-readable :func:`cache_totals`: store hit rates + evictions."""
    ct = cache_totals(spans)
    lines = ["Persistent result store (cross-run cache)"]
    if ct["probes"] == 0:
        lines.append("  not active (run with a result_store)")
        return "\n".join(lines)
    lines.append(
        f"  {ct['probes']} probe(s): {ct['hits']} hits / "
        f"{ct['misses']} misses  (hit rate {ct['hit_rate']:.1%})")
    if ct["evictions"]:
        lines.append(f"  {ct['evictions']} eviction(s), "
                     f"{ct['freed_bytes'] / 1e6:.1f} MB freed")
    return "\n".join(lines)


def memory_totals(spans, tolerance: float = 0.05) -> dict:
    """Memory-movement view of a traced run.

    Returns ``{"arena", "stages"}``: the latest workspace-arena counters
    (from the ``category="memory"`` instants the pipeline emits after
    each batch) and, per stage span that carried a byte-model
    prediction, a :func:`~repro.perfmodel.bytemodel.byte_drift` verdict
    of measured vs predicted traffic.
    """
    from repro.perfmodel.bytemodel import byte_drift
    arena: dict = {}
    stages: dict = {}
    for sp in spans:
        if sp.category == "memory" and sp.name == "arena":
            arena = dict(sp.attrs)   # last instant wins: counters are
            continue                 # cumulative over the workspace life
        if sp.category != "stage":
            continue
        predicted = int(sp.attrs.get("predicted_bytes", 0))
        if predicted <= 0:
            continue
        e = stages.setdefault(sp.name, {"measured": 0, "predicted": 0})
        e["measured"] += int(sp.bytes_moved)
        e["predicted"] += predicted
    for name, e in stages.items():
        e.update(byte_drift(e["measured"], e["predicted"], tolerance))
    return {"arena": arena, "stages": stages}


def memory_report(spans, tolerance: float = 0.05) -> str:
    """Human-readable :func:`memory_totals`: arena reuse + byte drift."""
    mt = memory_totals(spans, tolerance)
    lines = ["Memory movement (byte-aware dataflow view)"]
    arena = mt["arena"]
    if arena:
        lines.append(
            f"  arena {arena.get('name', '?')}: "
            f"{arena.get('reuses', 0)} reuses / "
            f"{arena.get('fresh', 0)} fresh / "
            f"{arena.get('escaped', 0)} escaped  "
            f"(reuse rate {float(arena.get('reuse_rate', 0.0)):.1%}, "
            f"{int(arena.get('bytes_pooled', 0)) / 1e6:.1f} MB pooled)")
    else:
        lines.append("  arena: not active (run with use_arena=True)")
    if mt["stages"]:
        for name, e in mt["stages"].items():
            flag = "DRIFT" if e["drifting"] else "ok"
            lines.append(
                f"  {name:<10s} measured {e['measured'] / 1e6:9.1f} MB  "
                f"predicted {e['predicted'] / 1e6:9.1f} MB  "
                f"ratio {e['ratio']:6.3f}  [{flag}]")
    else:
        lines.append("  no stage carried a byte-model prediction")
    return "\n".join(lines)
