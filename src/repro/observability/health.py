"""Declarative SLO rules evaluated continuously over the live view.

Where :mod:`repro.observability.anomaly` spots *events* (a straggler, a
drifting stage), this module answers "is the run healthy *right now*?"
against user-declared objectives.  Each :class:`SLORule` names a
measurable (utilization, p95 task latency, wasted-flop fraction, alert
count), a comparison, and a threshold; :class:`HealthMonitor` evaluates
the whole rule set against a
:class:`~repro.observability.live.LiveAggregator` and returns
:class:`SLOStatus` verdicts the dashboard and CI render.

Rules read the same cumulative metrics snapshot external scrapers get
through :meth:`MetricsRegistry.to_prometheus`, so the SLO surface and
the scrape surface never disagree — and per-tenant rules come for free
from the tenant-namespaced :class:`LabeledCounter` keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.errors import ConfigurationError

#: supported rule kinds and the direction of "healthy"
RULE_KINDS = {
    "utilization_floor": ">=",
    "p95_task_latency": "<=",
    "wasted_flop_budget": "<=",
    "alert_ceiling": "<=",
}


@dataclass
class SLORule:
    """One objective: measure ``kind``, require it ``op`` ``threshold``.

    ``tenant`` scopes ``wasted_flop_budget`` / ``alert_ceiling``-style
    rules to one tenant's share of the labeled counters (empty = whole
    run).
    """

    name: str
    kind: str
    threshold: float
    tenant: str = ""
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in RULE_KINDS:
            raise ConfigurationError(
                f"unknown SLO rule kind {self.kind!r}; "
                f"known: {sorted(RULE_KINDS)}")

    @property
    def op(self) -> str:
        return RULE_KINDS[self.kind]


@dataclass
class SLOStatus:
    """The verdict for one rule at one evaluation instant."""

    name: str
    kind: str
    ok: bool
    value: float | None
    threshold: float
    op: str
    detail: str = ""

    def as_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "ok": self.ok,
                "value": self.value, "threshold": self.threshold,
                "op": self.op, "detail": self.detail}


class HealthMonitor:
    """Evaluates a set of :class:`SLORule`\\ s against the rolling view."""

    def __init__(self, rules=None):
        self.rules = list(rules) if rules is not None else []

    @classmethod
    def default(cls) -> "HealthMonitor":
        """A permissive default rule set: flags only gross unhealth so
        ordinary smoke runs stay green."""
        return cls([
            SLORule("utilization", "utilization_floor", 0.05),
            SLORule("p95-latency", "p95_task_latency", 300.0),
            SLORule("wasted-flops", "wasted_flop_budget", 0.5),
            SLORule("critical-alerts", "alert_ceiling", 0.0,
                    params={"severity": "critical"}),
        ])

    # -- measurements -------------------------------------------------------

    def _measure(self, rule: SLORule, aggregator):
        if rule.kind == "utilization_floor":
            return aggregator.utilization(), ""
        if rule.kind == "p95_task_latency":
            q = float(rule.params.get("q", 0.95))
            value = aggregator.latency_quantile(q)
            return value, f"q={q:g} over {len(aggregator.all_latencies)}"
        if rule.kind == "wasted_flop_budget":
            tenant = rule.tenant or None
            if tenant is None:
                wasted = aggregator.counter_value("wasted_flops")
                useful = aggregator.labeled_total("stage_flops")
            else:
                wasted = aggregator.labeled_total("wasted_flops_by_tenant",
                                                  tenant=tenant)
                useful = aggregator.labeled_total("stage_flops",
                                                  tenant=tenant)
            total = wasted + useful
            if total <= 0:
                return None, "no flops recorded yet"
            scope = f" tenant={tenant}" if tenant else ""
            return wasted / total, \
                f"wasted={wasted} useful={useful}{scope}"
        if rule.kind == "alert_ceiling":
            severity = rule.params.get("severity")
            kind = rule.params.get("alert_kind")
            count = 0
            for alert in aggregator.alerts:
                if severity and alert.get("severity") != severity:
                    continue
                if kind and alert.get("kind") != kind:
                    continue
                count += 1
            scope = severity or "any"
            return float(count), f"severity={scope}"
        raise ConfigurationError(f"unknown SLO rule kind {rule.kind!r}")

    def evaluate(self, aggregator) -> list:
        """Return an :class:`SLOStatus` per rule.  A rule whose
        measurable has no data yet passes vacuously (``value=None``)."""
        statuses = []
        for rule in self.rules:
            value, detail = self._measure(rule, aggregator)
            if value is None:
                ok = True
            elif rule.op == ">=":
                ok = value >= rule.threshold
            else:
                ok = value <= rule.threshold
            statuses.append(SLOStatus(
                name=rule.name, kind=rule.kind, ok=ok, value=value,
                threshold=rule.threshold, op=rule.op, detail=detail))
        return statuses

    def healthy(self, aggregator) -> bool:
        return all(s.ok for s in self.evaluate(aggregator))
