"""Thread-safe metrics registry: counters, gauges, histograms.

The run-wide quantitative side of the observability layer (the span
tracer is the temporal side): FEAST iteration counts, retry counts,
batch-bucket widths, cache hit rates — anything countable — lives in a
:class:`MetricsRegistry`.  Registries are plain data underneath: they
``snapshot()`` to a JSON-serializable dict (what the checkpoint layer
persists) and ``merge()`` across runners without ever sharing a lock,
so production runs with several :class:`~repro.runtime.RunTelemetry`
instances report one coherent total.
"""

from __future__ import annotations

import threading

from repro.utils.errors import ConfigurationError


class Counter:
    """Monotonic sum.  Integer increments keep the value an exact int."""

    kind = "counter"

    def __init__(self, lock):
        self.value = 0
        self._lock = lock

    def inc(self, amount=1):
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        with self._lock:
            return {"kind": self.kind, "value": self.value}

    def merge_snapshot(self, snap: dict) -> None:
        self.inc(snap["value"])


class Gauge:
    """Last-written value (e.g. the resolved energy batch size)."""

    kind = "gauge"

    def __init__(self, lock):
        self.value = None
        self._lock = lock

    def set(self, value):
        with self._lock:
            self.value = value

    def snapshot(self) -> dict:
        with self._lock:
            return {"kind": self.kind, "value": self.value}

    def merge_snapshot(self, snap: dict) -> None:
        if snap.get("value") is not None:
            self.set(snap["value"])


class Histogram:
    """Streaming count/sum/min/max of observed values."""

    kind = "histogram"

    def __init__(self, lock):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._lock = lock

    def observe(self, value):
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self):
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {"kind": self.kind, "count": self.count,
                    "total": self.total, "min": self.min, "max": self.max}

    def merge_snapshot(self, snap: dict) -> None:
        with self._lock:
            self.count += snap["count"]
            self.total += snap["total"]
            for key, pick in (("min", min), ("max", max)):
                other = snap.get(key)
                if other is None:
                    continue
                ours = getattr(self, key)
                setattr(self, key,
                        other if ours is None else pick(ours, other))


class LabeledCounter:
    """A family of counters keyed by a string label.

    Backs set-like telemetry too: ``quarantined_nodes`` is the label set
    of a labeled counter, so a cross-runner merge is a plain union.
    """

    kind = "labeled_counter"

    def __init__(self, lock):
        self.values: dict = {}
        self._lock = lock

    def inc(self, label: str, amount=1):
        with self._lock:
            self.values[label] = self.values.get(label, 0) + amount

    def get(self, label: str):
        with self._lock:
            return self.values.get(label, 0)

    def as_dict(self) -> dict:
        with self._lock:
            return dict(self.values)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "values": self.as_dict()}

    def merge_snapshot(self, snap: dict) -> None:
        for label, value in snap["values"].items():
            self.inc(label, value)


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram,
                                    LabeledCounter)}


class MetricsRegistry:
    """Named metrics with get-or-create access and snapshot/merge.

    All accessors are thread-safe; each metric carries its own lock, so
    two registries never deadlock when merging into each other
    concurrently (merges read a snapshot of the source first).
    """

    def __init__(self):
        self._metrics: dict = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(threading.Lock())
            elif not isinstance(metric, cls):
                raise ConfigurationError(
                    f"metric {name!r} is a {metric.kind}, not a "
                    f"{cls.kind}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def labeled(self, name: str) -> LabeledCounter:
        return self._get(name, LabeledCounter)

    def names(self) -> list:
        with self._lock:
            return sorted(self._metrics)

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable state of every metric (checkpoint format)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: m.snapshot() for name, m in sorted(metrics.items())}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a snapshot in: counters sum, labels union, gauges adopt."""
        for name, entry in snap.items():
            cls = _KINDS.get(entry.get("kind"))
            if cls is None:
                raise ConfigurationError(
                    f"unknown metric kind {entry.get('kind')!r} for "
                    f"{name!r}")
            self._get(name, cls).merge_snapshot(entry)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in via its snapshot (no shared locking)."""
        self.merge_snapshot(other.snapshot())

    @classmethod
    def from_snapshot(cls, snap: dict) -> "MetricsRegistry":
        reg = cls()
        reg.merge_snapshot(snap)
        return reg

    def as_rows(self) -> list:
        """Human-readable ``name  value`` rows for CLI reports."""
        rows = []
        for name, entry in self.snapshot().items():
            kind = entry["kind"]
            if kind == "counter" or kind == "gauge":
                rows.append(f"{name:<28s} {entry['value']}")
            elif kind == "histogram":
                if entry["count"]:
                    mean = entry["total"] / entry["count"]
                    rows.append(
                        f"{name:<28s} n={entry['count']} "
                        f"mean={mean:.4g} min={entry['min']:.4g} "
                        f"max={entry['max']:.4g}")
                else:
                    rows.append(f"{name:<28s} n=0")
            else:
                rows.append(f"{name:<28s} {entry['values']}")
        return rows
