"""Thread-safe metrics registry: counters, gauges, histograms.

The run-wide quantitative side of the observability layer (the span
tracer is the temporal side): FEAST iteration counts, retry counts,
batch-bucket widths, cache hit rates — anything countable — lives in a
:class:`MetricsRegistry`.  Registries are plain data underneath: they
``snapshot()`` to a JSON-serializable dict (what the checkpoint layer
persists) and ``merge()`` across runners without ever sharing a lock,
so production runs with several :class:`~repro.runtime.RunTelemetry`
instances report one coherent total.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left

from repro.utils.errors import ConfigurationError


class Counter:
    """Monotonic sum.  Integer increments keep the value an exact int."""

    kind = "counter"

    def __init__(self, lock):
        self.value = 0
        self._lock = lock

    def inc(self, amount=1):
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        with self._lock:
            return {"kind": self.kind, "value": self.value}

    def merge_snapshot(self, snap: dict) -> None:
        self.inc(snap["value"])


class Gauge:
    """Last-written value (e.g. the resolved energy batch size)."""

    kind = "gauge"

    def __init__(self, lock):
        self.value = None
        self._lock = lock

    def set(self, value):
        with self._lock:
            self.value = value

    def snapshot(self) -> dict:
        with self._lock:
            return {"kind": self.kind, "value": self.value}

    def merge_snapshot(self, snap: dict) -> None:
        if snap.get("value") is not None:
            self.set(snap["value"])


#: default histogram bucket bounds: three log-spaced buckets per decade
#: over 1e-9 .. 1e9 — wide enough for latencies in seconds, iteration
#: counts, and byte volumes alike (values outside land in the two
#: open-ended edge buckets)
DEFAULT_BOUNDS = tuple(10.0 ** (k / 3.0) for k in range(-27, 28))


class Histogram:
    """Streaming count/sum/min/max plus fixed log-spaced bucket counts.

    Bucket counts are exact integers, so merging histograms across
    runners (or worker processes) loses no observation; they also make
    :meth:`quantile` answerable online, which is what the live SLO
    rules (p95 task latency) query.
    """

    kind = "histogram"

    def __init__(self, lock, bounds=None):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.bounds = tuple(float(b) for b in
                            (bounds if bounds is not None
                             else DEFAULT_BOUNDS))
        #: counts[i] observes values <= bounds[i]; the final slot is the
        #: +Inf overflow bucket
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self._lock = lock

    def observe(self, value):
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self):
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def quantile(self, q: float):
        """Online quantile estimate from the bucket counts.

        Returns the upper bound of the bucket holding the ``q``-th
        observation, clamped to the observed ``[min, max]`` range (so
        p50 of identical values is that value, not a bucket edge).
        ``None`` when nothing was observed yet.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile q must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return None
            target = max(int(math.ceil(q * self.count)), 1)
            cum = 0
            for i, c in enumerate(self.bucket_counts):
                cum += c
                if cum >= target:
                    edge = self.bounds[i] if i < len(self.bounds) \
                        else self.max
                    return min(max(edge, self.min), self.max)
            return self.max

    def snapshot(self) -> dict:
        with self._lock:
            return {"kind": self.kind, "count": self.count,
                    "total": self.total, "min": self.min, "max": self.max,
                    "bounds": list(self.bounds),
                    "buckets": list(self.bucket_counts)}

    def merge_snapshot(self, snap: dict) -> None:
        with self._lock:
            self.count += snap["count"]
            self.total += snap["total"]
            for key, pick in (("min", min), ("max", max)):
                other = snap.get(key)
                if other is None:
                    continue
                ours = getattr(self, key)
                setattr(self, key,
                        other if ours is None else pick(ours, other))
            buckets = snap.get("buckets")
            bounds = snap.get("bounds")
            if buckets is not None and bounds is not None \
                    and tuple(float(b) for b in bounds) == self.bounds:
                for i, c in enumerate(buckets):
                    self.bucket_counts[i] += int(c)
            elif buckets is not None and bounds:
                # mismatched grids: re-bin each source bucket at its
                # upper bound (count/total stay exact; quantiles degrade
                # to the coarser of the two grids)
                for i, c in enumerate(buckets):
                    if not c:
                        continue
                    edge = bounds[i] if i < len(bounds) \
                        else snap.get("max", float("inf"))
                    self.bucket_counts[
                        bisect_left(self.bounds, edge)] += int(c)
            elif snap["count"]:
                # legacy bucket-less snapshot: spread at the mean
                mean = snap["total"] / snap["count"]
                self.bucket_counts[
                    bisect_left(self.bounds, mean)] += int(snap["count"])


#: separator of the optional tenant namespace inside a labeled-counter
#: key: ``"tenantA|SOLVE"`` is tenant ``tenantA``'s ``SOLVE`` counter
TENANT_SEP = "|"


class LabeledCounter:
    """A family of counters keyed by a string label.

    Backs set-like telemetry too: ``quarantined_nodes`` is the label set
    of a labeled counter, so a cross-runner merge is a plain union.

    Labels optionally carry a *tenant* namespace (``tenant=`` on
    :meth:`inc`), stored as ``"tenant|label"`` keys — snapshots and
    merges need no schema change, and the per-tenant accounting the
    async job layer will need (fair-share SLOs, usage reports) falls
    out of :meth:`by_tenant` for free.
    """

    kind = "labeled_counter"

    def __init__(self, lock):
        self.values: dict = {}
        self._lock = lock

    @staticmethod
    def _key(label: str, tenant: str | None) -> str:
        if tenant is None:
            return label
        if TENANT_SEP in str(tenant):
            raise ConfigurationError(
                f"tenant name may not contain {TENANT_SEP!r}: {tenant!r}")
        return f"{tenant}{TENANT_SEP}{label}"

    def inc(self, label: str, amount=1, tenant: str | None = None):
        key = self._key(label, tenant)
        with self._lock:
            self.values[key] = self.values.get(key, 0) + amount

    def get(self, label: str, tenant: str | None = None):
        key = self._key(label, tenant)
        with self._lock:
            return self.values.get(key, 0)

    def as_dict(self) -> dict:
        with self._lock:
            return dict(self.values)

    def by_tenant(self) -> dict:
        """Nested ``{tenant: {label: value}}`` view; labels written
        without a tenant land under the ``""`` (untenanted) key."""
        out: dict = {}
        for key, value in self.as_dict().items():
            tenant, _, label = key.partition(TENANT_SEP)
            if not label:        # no separator: untenanted label
                tenant, label = "", key
            out.setdefault(tenant, {})[label] = value
        return out

    def tenant_total(self, tenant: str):
        """Summed value of every label one tenant ever incremented."""
        return sum(self.by_tenant().get(str(tenant), {}).values())

    def snapshot(self) -> dict:
        return {"kind": self.kind, "values": self.as_dict()}

    def merge_snapshot(self, snap: dict) -> None:
        for label, value in snap["values"].items():
            self.inc(label, value)


def _prom_num(value) -> str:
    """Render a sample value: ints stay exact, floats use repr."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram,
                                    LabeledCounter)}


class MetricsRegistry:
    """Named metrics with get-or-create access and snapshot/merge.

    All accessors are thread-safe; each metric carries its own lock, so
    two registries never deadlock when merging into each other
    concurrently (merges read a snapshot of the source first).
    """

    def __init__(self):
        self._metrics: dict = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(threading.Lock())
            elif not isinstance(metric, cls):
                raise ConfigurationError(
                    f"metric {name!r} is a {metric.kind}, not a "
                    f"{cls.kind}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def labeled(self, name: str) -> LabeledCounter:
        return self._get(name, LabeledCounter)

    def names(self) -> list:
        with self._lock:
            return sorted(self._metrics)

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable state of every metric (checkpoint format)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: m.snapshot() for name, m in sorted(metrics.items())}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a snapshot in: counters sum, labels union, gauges adopt."""
        for name, entry in snap.items():
            cls = _KINDS.get(entry.get("kind"))
            if cls is None:
                raise ConfigurationError(
                    f"unknown metric kind {entry.get('kind')!r} for "
                    f"{name!r}")
            self._get(name, cls).merge_snapshot(entry)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in via its snapshot (no shared locking)."""
        self.merge_snapshot(other.snapshot())

    @classmethod
    def from_snapshot(cls, snap: dict) -> "MetricsRegistry":
        reg = cls()
        reg.merge_snapshot(snap)
        return reg

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition of every metric.

        One query surface for external scrapers and the in-process SLO
        rules: counters and gauges become single samples, histograms
        expose cumulative ``_bucket{le=...}`` series plus ``_sum`` /
        ``_count`` (the exact ints :meth:`Histogram.quantile` reads),
        labeled counters become ``{label=...}`` series with the tenant
        namespace split into its own ``tenant`` label.
        """
        lines = []
        for name, entry in self.snapshot().items():
            metric = prefix + re.sub(r"[^a-zA-Z0-9_:]", "_", name)
            kind = entry["kind"]
            if kind == "counter":
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {_prom_num(entry['value'])}")
            elif kind == "gauge":
                if not isinstance(entry["value"], (int, float)) \
                        or isinstance(entry["value"], bool):
                    continue          # non-numeric gauges are not samples
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {_prom_num(entry['value'])}")
            elif kind == "histogram":
                lines.append(f"# TYPE {metric} histogram")
                cum = 0
                buckets = entry.get("buckets") or []
                bounds = entry.get("bounds") or []
                for bound, count in zip(bounds, buckets):
                    cum += int(count)
                    if count:        # sparse: only non-empty buckets
                        lines.append(
                            f'{metric}_bucket{{le="{bound:g}"}} {cum}')
                lines.append(
                    f'{metric}_bucket{{le="+Inf"}} {entry["count"]}')
                lines.append(
                    f"{metric}_sum {_prom_num(entry['total'])}")
                lines.append(f"{metric}_count {entry['count']}")
            else:                     # labeled counter
                lines.append(f"# TYPE {metric} counter")
                for key in sorted(entry["values"]):
                    tenant, _, label = key.partition(TENANT_SEP)
                    if not label:
                        tenant, label = "", key
                    sel = f'label="{label}"' if not tenant else \
                        f'tenant="{tenant}",label="{label}"'
                    lines.append(
                        f"{metric}{{{sel}}} "
                        f"{_prom_num(entry['values'][key])}")
        return "\n".join(lines) + "\n"

    def as_rows(self) -> list:
        """Human-readable ``name  value`` rows for CLI reports."""
        rows = []
        for name, entry in self.snapshot().items():
            kind = entry["kind"]
            if kind == "counter" or kind == "gauge":
                rows.append(f"{name:<28s} {entry['value']}")
            elif kind == "histogram":
                if entry["count"]:
                    mean = entry["total"] / entry["count"]
                    rows.append(
                        f"{name:<28s} n={entry['count']} "
                        f"mean={mean:.4g} min={entry['min']:.4g} "
                        f"max={entry['max']:.4g}")
                else:
                    rows.append(f"{name:<28s} n=0")
            else:
                rows.append(f"{name:<28s} {entry['values']}")
        return rows
