"""Thread-safe span tracer with nested scopes (the run-wide event stream).

A :class:`Span` is one timed scope of the simulation — SCF iteration,
bias point, (k, E-batch) task, pipeline stage, kernel event — carrying
wall time, exact :class:`~repro.linalg.flops.FlopLedger` flops, the
worker/node it ran on, and free-form attributes.  Spans nest through a
per-thread scope stack, so a stage span emitted inside a task scope
records that task as its parent and exporters can rebuild the full
hierarchy (Perfetto renders it as stacked slices).

One tracer is installed process-wide (:func:`install_tracer` /
:func:`tracing`); instrumentation sites call :func:`current_tracer` and
do nothing when it returns ``None``, so a run without tracing pays one
global read per stage — the near-zero disabled overhead the
acceptance criterion demands.  Each tracer also carries a
:class:`~repro.observability.metrics.MetricsRegistry` so span-adjacent
counters (retries, rebalances, bucket widths) land in the same
observable unit.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.linalg.flops import current_device
from repro.observability.metrics import MetricsRegistry

#: span categories used by the built-in instrumentation sites
CATEGORIES = ("bias", "scf", "task", "stage", "kernel", "fault",
              "balancer", "memory", "checkpoint")


@dataclass
class Span:
    """One timed scope; times are ``time.perf_counter`` seconds."""

    name: str
    category: str = ""
    t_start: float = 0.0
    t_stop: float = 0.0
    flops: int = 0
    bytes_moved: int = 0
    worker: str = "cpu"
    span_id: int = 0
    parent_id: int | None = None
    #: monotonic registration sequence number within one tracer.  Wall
    #: times tie (instant events especially, across worker processes),
    #: so exporters and reports order by ``(t_start, seq)`` — the seq
    #: makes merged/absorbed streams sort deterministically.
    seq: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return max(self.t_stop - self.t_start, 0.0)

    def as_dict(self) -> dict:
        """JSON-serializable form (the JSONL event-log record)."""
        return {"name": self.name, "category": self.category,
                "t_start": self.t_start, "t_stop": self.t_stop,
                "flops": int(self.flops),
                "bytes_moved": int(self.bytes_moved),
                "worker": self.worker, "span_id": self.span_id,
                "parent_id": self.parent_id, "seq": int(self.seq),
                "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(name=data["name"], category=data.get("category", ""),
                   t_start=float(data.get("t_start", 0.0)),
                   t_stop=float(data.get("t_stop", 0.0)),
                   flops=int(data.get("flops", 0)),
                   bytes_moved=int(data.get("bytes_moved", 0)),
                   worker=data.get("worker", "cpu"),
                   span_id=int(data.get("span_id", 0)),
                   parent_id=data.get("parent_id"),
                   seq=int(data.get("seq", 0)),
                   attrs=dict(data.get("attrs", {})))


class SpanTracer:
    """Collects spans from every thread of a run.

    Parameters
    ----------
    enabled : bool
        A disabled tracer records nothing; every entry point returns
        immediately (``span()`` yields ``None``).
    metrics : :class:`MetricsRegistry`, optional
        The registry span-adjacent counters record into; a fresh one is
        created when omitted.
    """

    def __init__(self, enabled: bool = True,
                 metrics: MetricsRegistry | None = None):
        self.enabled = bool(enabled)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: list = []
        #: optional live-telemetry hook (a
        #: :class:`repro.observability.live.BusPublisher`): when set,
        #: span open/close and instant events are mirrored onto the
        #: telemetry bus as they happen.  ``None`` (the default) costs
        #: one attribute read per span.
        self.publisher = None
        self._lock = threading.Lock()
        self._next_id = 1
        self._tls = threading.local()

    # -- scope stack (per thread) -------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_parent_id(self) -> int | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def _register(self, span: Span) -> Span:
        with self._lock:
            span.span_id = self._next_id
            span.seq = self._next_id
            self._next_id += 1
            self.spans.append(span)
        return span

    def publish(self, event: dict) -> None:
        """Forward one live-telemetry event to the attached publisher
        (no-op without one — the disabled path is one attribute read)."""
        pub = self.publisher
        if pub is not None:
            pub(event)

    def _publish_span(self, sp: Span, kind: str) -> None:
        pub = self.publisher
        if pub is None:
            return
        event = {"type": kind, "name": sp.name, "category": sp.category,
                 "span_id": sp.span_id, "worker": sp.worker}
        if kind != "span-open":
            event["seconds"] = sp.seconds
            event["flops"] = int(sp.flops)
            event["bytes"] = int(sp.bytes_moved)
        if sp.attrs:
            event["attrs"] = dict(sp.attrs)
        pub(event)

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, category: str = "", worker: str | None = None,
             **attrs):
        """Open a nested scope; yields the live :class:`Span` (or ``None``
        when the tracer is disabled).  The span is registered at open so
        children see it as their parent; ``t_stop`` lands on exit,
        success or failure (a raising body is still timed, with the
        exception type recorded in ``attrs["error"]``)."""
        if not self.enabled:
            yield None
            return
        sp = Span(name=name, category=category,
                  worker=worker if worker is not None else current_device(),
                  t_start=time.perf_counter(),
                  parent_id=self.current_parent_id(), attrs=dict(attrs))
        self._register(sp)
        self._publish_span(sp, "span-open")
        stack = self._stack()
        stack.append(sp.span_id)
        try:
            yield sp
        except BaseException as exc:
            sp.attrs["error"] = type(exc).__name__
            raise
        finally:
            stack.pop()
            sp.t_stop = time.perf_counter()
            self._publish_span(sp, "span-close")

    def emit(self, name: str, category: str = "",
             t_start: float | None = None, t_stop: float | None = None,
             seconds: float | None = None, flops: int = 0,
             bytes_moved: int = 0, worker: str | None = None,
             attrs: dict | None = None,
             parent_id: int | None = None) -> Span | None:
        """Record a completed span post hoc (e.g. from a StageTrace).

        ``seconds`` is an alternative to ``t_stop``; when the exact
        measured duration is known (a stage's ``StageTrace.seconds``)
        passing it keeps the exported span bit-identical to the table
        the reconciliation checks compare against.
        """
        if not self.enabled:
            return None
        now = time.perf_counter()
        if t_start is None:
            t_start = now
        if t_stop is None:
            t_stop = t_start + (seconds if seconds is not None else 0.0)
        sp = Span(name=name, category=category, t_start=t_start,
                  t_stop=t_stop, flops=int(flops),
                  bytes_moved=int(bytes_moved),
                  worker=worker if worker is not None else current_device(),
                  parent_id=(parent_id if parent_id is not None
                             else self.current_parent_id()),
                  attrs=dict(attrs or {}))
        self._register(sp)
        self._publish_span(
            sp, "instant" if sp.t_stop <= sp.t_start else "span-close")
        return sp

    def instant(self, name: str, category: str = "",
                worker: str | None = None,
                attrs: dict | None = None) -> Span | None:
        """A zero-duration marker event (retry, rebalance, quarantine)."""
        now = time.perf_counter()
        return self.emit(name, category=category, t_start=now, t_stop=now,
                         worker=worker, attrs=attrs)

    def absorb(self, span_dicts, parent_id: int | None = None) -> list:
        """Adopt spans recorded by another tracer (e.g. a worker process).

        ``span_dicts`` are :meth:`Span.as_dict` records.  Every span gets
        a fresh id from this tracer's sequence; the parent/child links
        *within* the absorbed batch are remapped accordingly, and spans
        that were roots in the source tracer are attached to
        ``parent_id`` (default: the caller's current scope), so a worker
        task's span tree hangs under the parent-side span that dispatched
        it.  Returns the adopted :class:`Span` objects.
        """
        if not self.enabled:
            return []
        if parent_id is None:
            parent_id = self.current_parent_id()
        spans = [Span.from_dict(d) if isinstance(d, dict) else d
                 for d in span_dicts]
        # Adopt in the source tracer's registration order (its seq), so
        # fresh ids/seqs are assigned deterministically regardless of the
        # iteration order the batch arrived in.
        spans.sort(key=lambda s: (s.seq, s.span_id))
        remap: dict = {}
        with self._lock:
            for sp in spans:
                old = sp.span_id
                sp.span_id = self._next_id
                sp.seq = self._next_id
                self._next_id += 1
                remap[old] = sp.span_id
            for sp in spans:
                sp.parent_id = remap.get(sp.parent_id, parent_id)
            self.spans.extend(spans)
        return spans

    # -- access -------------------------------------------------------------

    def records(self) -> list:
        """Snapshot of the recorded spans (list copy, thread-safe)."""
        with self._lock:
            return list(self.spans)

    def by_category(self, category: str) -> list:
        return [s for s in self.records() if s.category == category]


# --------------------------------------------------------------------------
# Process-wide active tracer
# --------------------------------------------------------------------------

_ACTIVE: SpanTracer | None = None


def current_tracer() -> SpanTracer | None:
    """The installed tracer, or ``None`` when tracing is off/disabled.

    Instrumentation sites branch on this; the disabled path is one
    module-global read.
    """
    tracer = _ACTIVE
    if tracer is not None and tracer.enabled:
        return tracer
    return None


def install_tracer(tracer: SpanTracer | None) -> SpanTracer | None:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def tracing(tracer: SpanTracer | None = None):
    """Scope with a tracer installed (created fresh when omitted)::

        with tracing() as tracer:
            run_production(...)
        write_chrome_trace(tracer.records(), "trace.json")
    """
    if tracer is None:
        tracer = SpanTracer()
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)


def spans_from_kernel_events(events) -> list:
    """Convert ledger :class:`~repro.linalg.flops.KernelEvent` records to
    spans (category ``"kernel"``) so the Fig. 12(b) activity detail can
    ride in the same Perfetto trace as the stage/task spans."""
    out = []
    for ev in events:
        out.append(Span(name=ev.kernel, category="kernel",
                        t_start=ev.t_start, t_stop=ev.t_stop,
                        flops=int(ev.flops),
                        bytes_moved=int(ev.bytes_moved),
                        worker=ev.device,
                        attrs={"tag": ev.tag} if ev.tag else {}))
    return out
