"""Span exporters: JSONL event log and Chrome-trace/Perfetto JSON.

Two formats, both plain files:

* **JSONL** — one :meth:`Span.as_dict` object per line; the lossless
  run-wide event log that ``python -m repro report`` re-reads.
* **Chrome trace events** — the ``{"traceEvents": [...]}`` JSON that
  ``chrome://tracing`` and https://ui.perfetto.dev load directly.  Each
  worker/node becomes one *process* (track group) with per-thread
  tracks, regenerating the paper's Fig. 12 per-node activity timeline
  from a real traced run.  :func:`validate_chrome_trace` is the schema
  check CI runs on the exported artifact.
"""

from __future__ import annotations

import json

from repro.observability.spans import Span
from repro.utils.errors import ConfigurationError


def write_spans_jsonl(spans, path) -> int:
    """Write spans as JSON-lines; returns the number of records."""
    spans = list(spans)
    with open(path, "w") as fh:
        for sp in spans:
            fh.write(json.dumps(sp.as_dict()) + "\n")
    return len(spans)


def read_spans_jsonl(path) -> list:
    """Read a JSONL event log back into :class:`Span` objects."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(Span.from_dict(json.loads(line)))
    return out


def _worker_pids(spans) -> dict:
    """Stable worker -> pid mapping (sorted; one Perfetto track group
    per simulated node)."""
    return {w: i + 1 for i, w in
            enumerate(sorted({sp.worker for sp in spans}))}


def _thread_tids(spans) -> dict:
    """Pack spans of one worker onto minimal track lanes (tids).

    Spans do not carry thread ids, so concurrent spans of one worker are
    disambiguated by overlap: a child span shares its parent's lane
    (Chrome-trace nesting needs one tid per stack), and every other span
    takes the lowest lane that is free at its start time.
    """
    by_id = {sp.span_id: sp for sp in spans if sp.span_id}
    tids: dict = {}
    busy_until: dict = {}          # (worker, tid) -> t_stop
    for sp in sorted(spans, key=lambda s: (s.t_start, s.t_stop, s.seq)):
        parent = by_id.get(sp.parent_id) if sp.parent_id else None
        if parent is not None and id(parent) in tids \
                and parent.worker == sp.worker:
            tid = tids[id(parent)]
        else:
            tid = 1
            while busy_until.get((sp.worker, tid), -1.0) > sp.t_start \
                    + 1e-9:
                tid += 1
        busy_until[(sp.worker, tid)] = max(
            busy_until.get((sp.worker, tid), -1.0), sp.t_stop)
        tids[id(sp)] = tid
    return tids


def to_chrome_trace(spans, kernel_spans=None) -> dict:
    """Build a Chrome trace-event JSON object from spans.

    Nested spans become stacked "X" (complete) slices; zero-duration
    spans become instant events.  Timestamps are microseconds relative
    to the earliest span, which keeps the numbers small and Perfetto's
    timeline anchored at zero.
    """
    spans = list(spans) + list(kernel_spans or [])
    if not spans:
        raise ConfigurationError("no spans recorded; run under tracing()")
    origin = min(sp.t_start for sp in spans)
    pids = _worker_pids(spans)
    tids = _thread_tids(spans)

    events = []
    for worker, pid in pids.items():
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": worker}})
        events.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                       "tid": 0, "args": {"sort_index": pid}})

    for sp in spans:
        pid = pids[sp.worker]
        tid = tids[id(sp)]
        args = {"flops": int(sp.flops),
                "bytes_moved": int(sp.bytes_moved)}
        args.update(sp.attrs)
        common = {"name": sp.name, "cat": sp.category or "span",
                  "pid": pid, "tid": tid,
                  "ts": (sp.t_start - origin) * 1e6, "args": args}
        if sp.seconds <= 0.0:
            events.append({**common, "ph": "i", "s": "t"})
        else:
            events.append({**common, "ph": "X",
                           "dur": sp.seconds * 1e6})
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"exporter": "repro.observability"}}


def write_chrome_trace(spans, path, kernel_spans=None) -> dict:
    """Export spans to a Perfetto-loadable JSON file (validated)."""
    trace = to_chrome_trace(spans, kernel_spans=kernel_spans)
    validate_chrome_trace(trace)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return trace


_REQUIRED = {"X": ("name", "ts", "dur", "pid", "tid"),
             "i": ("name", "ts", "pid", "tid"),
             "M": ("name", "pid")}


def validate_chrome_trace(trace) -> int:
    """Schema-check a Chrome trace-event JSON object.

    Verifies the structural invariants Perfetto's JSON importer relies
    on (an event array, known phase tags, required per-phase fields,
    finite non-negative timestamps).  Returns the number of slice
    ("X") events; raises :class:`ConfigurationError` on any violation.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ConfigurationError(
            "not a Chrome trace: missing 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ConfigurationError("'traceEvents' must be a non-empty list")
    slices = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ConfigurationError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in _REQUIRED:
            raise ConfigurationError(
                f"event {i} has unsupported phase {ph!r}")
        for key in _REQUIRED[ph]:
            if key not in ev:
                raise ConfigurationError(
                    f"event {i} (ph={ph}) is missing {key!r}")
        if ph == "X":
            slices += 1
            if not (ev["ts"] >= 0.0 and ev["dur"] >= 0.0):
                raise ConfigurationError(
                    f"event {i} has negative ts/dur")
    if slices == 0:
        raise ConfigurationError("trace holds no slice ('X') events")
    return slices
