"""Online anomaly detection over the live telemetry stream.

Detectors consume the :class:`~repro.observability.live.LiveAggregator`
rolling view after every bus drain and emit typed :class:`Alert`
records with severity and evidence.  Each detector deduplicates on a
subject key and re-alerts only when severity escalates, so a persistent
condition produces one warning (and at most one critical), not a flood.

The built-in set covers the failure modes the paper's scaling runs care
about: stragglers (per-node latency vs. the fleet), byte/flop drift
(measured kernel traffic vs. the exact
:mod:`repro.perfmodel.bytemodel` predictions, reusing
:func:`~repro.perfmodel.bytemodel.byte_drift`), mixed-precision
fallback-rate spikes, result-store hit-rate collapse, and
checkpoint-interval overrun.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.perfmodel.bytemodel import byte_drift

#: ordered severities (index = rank, used for escalation)
SEVERITIES = ("info", "warning", "critical")


@dataclass
class Alert:
    """One detected anomaly, with enough evidence to act on."""

    kind: str
    severity: str
    message: str
    node: str = ""
    t: float = 0.0
    evidence: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if not self.t:
            self.t = time.time()

    @property
    def rank(self) -> int:
        return SEVERITIES.index(self.severity)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "severity": self.severity,
                "message": self.message, "node": self.node,
                "t": self.t, "evidence": dict(self.evidence)}

    @classmethod
    def from_dict(cls, data: dict) -> "Alert":
        return cls(kind=data["kind"], severity=data["severity"],
                   message=data.get("message", ""),
                   node=data.get("node", ""), t=data.get("t", 0.0),
                   evidence=dict(data.get("evidence", {})))


class Detector:
    """Base class: subject-keyed dedup with severity escalation."""

    kind = "anomaly"

    def __init__(self):
        self._raised: dict = {}

    def _emit(self, subject: str, alert: Alert):
        """Return ``alert`` if it is new (or escalates) for ``subject``,
        else ``None``."""
        previous = self._raised.get(subject)
        if previous is not None and alert.rank <= previous:
            return None
        self._raised[subject] = alert.rank
        return alert

    def update(self, aggregator) -> list:
        """Inspect the rolling view; return fresh :class:`Alert`\\ s."""
        raise NotImplementedError


class StragglerDetector(Detector):
    """A node whose task latency exceeds the rest of the fleet.

    The balancer's ``weighted_shares`` assumes near-uniform per-task
    latency across nodes at equal speed; a node whose mean (windowed)
    latency exceeds the mean of the *other* nodes by ``ratio`` is a
    straggler.  The evidence carries ``suggested_speed`` — the relative
    speed the balancer should assume (other-mean / node-mean) — so
    consumers can act without re-deriving it.
    """

    kind = "straggler"

    def __init__(self, ratio: float = 1.8, critical_ratio: float = 4.0,
                 min_tasks: int = 2):
        super().__init__()
        self.ratio = float(ratio)
        self.critical_ratio = float(critical_ratio)
        self.min_tasks = int(min_tasks)

    def update(self, aggregator) -> list:
        nodes = [n for n in aggregator.nodes.values()
                 if n.latencies and n.worker != "monitor"]
        if len(nodes) < 2:
            return []
        alerts = []
        for node in nodes:
            if node.tasks_done < self.min_tasks:
                continue
            others = [o.mean_latency() for o in nodes if o is not node
                      and o.latencies]
            if not others:
                continue
            fleet = sum(others) / len(others)
            mine = node.mean_latency()
            if fleet <= 0.0 or mine <= 0.0:
                continue
            latency_ratio = mine / fleet
            if latency_ratio < self.ratio:
                continue
            severity = "critical" if latency_ratio >= self.critical_ratio \
                else "warning"
            alert = self._emit(node.worker, Alert(
                kind=self.kind, severity=severity, node=node.worker,
                message=(f"node {node.worker} is {latency_ratio:.1f}x "
                         f"slower than the fleet"),
                evidence={"latency_ratio": latency_ratio,
                          "node_mean_s": mine, "fleet_mean_s": fleet,
                          "tasks_done": node.tasks_done,
                          "suggested_speed": fleet / mine}))
            if alert is not None:
                alerts.append(alert)
        return alerts


class ByteDriftDetector(Detector):
    """Measured stage bytes drifting from the exact byte model.

    Cumulative per-stage measured vs. ``predicted_bytes`` (attached to
    stage spans by the pipeline) through
    :func:`~repro.perfmodel.bytemodel.byte_drift` — the data-centric
    health signal: silently-introduced extra copies show up here first.
    """

    kind = "byte-drift"

    def __init__(self, tolerance: float = 0.05,
                 critical_tolerance: float = 0.5,
                 min_bytes: int = 1024):
        super().__init__()
        self.tolerance = float(tolerance)
        self.critical_tolerance = float(critical_tolerance)
        self.min_bytes = int(min_bytes)

    def update(self, aggregator) -> list:
        alerts = []
        for stage, pair in aggregator.stage_bytes.items():
            if pair["measured"] < self.min_bytes:
                continue
            verdict = byte_drift(pair["measured"], pair["predicted"],
                                 self.tolerance)
            if not verdict["drifting"]:
                continue
            deviation = abs(verdict["ratio"] - 1.0)
            severity = "critical" \
                if deviation > self.critical_tolerance else "warning"
            alert = self._emit(stage, Alert(
                kind=self.kind, severity=severity,
                message=(f"stage {stage} moved "
                         f"{verdict['ratio']:.2f}x the modelled bytes"),
                evidence={"stage": stage, **verdict}))
            if alert is not None:
                alerts.append(alert)
        return alerts


class FallbackRateDetector(Detector):
    """Mixed-precision double-fallback rate spike.

    The mixed backend promotes slices whose refined residual misses the
    gate; occasional fallbacks are normal, a high rate means the
    workload lost the speed the backend exists for.
    """

    kind = "fallback-rate"

    def __init__(self, threshold: float = 0.25,
                 critical_threshold: float = 0.75, min_slices: int = 8):
        super().__init__()
        self.threshold = float(threshold)
        self.critical_threshold = float(critical_threshold)
        self.min_slices = int(min_slices)

    def update(self, aggregator) -> list:
        factored = aggregator.counter_value("mixed_factor_slices")
        fallback = aggregator.counter_value("mixed_fallback_slices")
        if factored < self.min_slices:
            return []
        rate = fallback / factored
        if rate < self.threshold:
            return []
        severity = "critical" if rate >= self.critical_threshold \
            else "warning"
        alert = self._emit("mixed", Alert(
            kind=self.kind, severity=severity,
            message=(f"mixed-precision fallback rate {rate:.0%} "
                     f"({fallback}/{factored} slices)"),
            evidence={"fallback_rate": rate,
                      "fallback_slices": fallback,
                      "factored_slices": factored}))
        return [alert] if alert is not None else []


class StoreHitRateDetector(Detector):
    """Result-store hit rate collapsing mid-run.

    Tracks the windowed hit rate between polls; once the store has
    proven useful (peak windowed rate above ``min_peak``), a window
    whose rate falls below ``collapse_fraction`` of that peak is a
    collapse — e.g. an evicting store or a key-schema mismatch after a
    config change.  A store that was never warm stays silent.
    """

    kind = "store-hit-rate"

    def __init__(self, min_peak: float = 0.5,
                 collapse_fraction: float = 0.5,
                 min_window_lookups: int = 4):
        super().__init__()
        self.min_peak = float(min_peak)
        self.collapse_fraction = float(collapse_fraction)
        self.min_window_lookups = int(min_window_lookups)
        self._last = (0, 0)
        self._peak = 0.0

    def update(self, aggregator) -> list:
        hits = aggregator.counter_value("result_store_hits")
        misses = aggregator.counter_value("result_store_misses")
        lookups = hits + misses
        last_hits, last_lookups = self._last
        window = lookups - last_lookups
        if window < self.min_window_lookups:
            return []
        rate = (hits - last_hits) / window
        self._last = (hits, lookups)
        if rate > self._peak:
            self._peak = rate
            return []
        if self._peak < self.min_peak \
                or rate >= self.collapse_fraction * self._peak:
            return []
        alert = self._emit("store", Alert(
            kind=self.kind, severity="warning",
            message=(f"result-store hit rate collapsed to {rate:.0%} "
                     f"(peak {self._peak:.0%})"),
            evidence={"window_rate": rate, "peak_rate": self._peak,
                      "window_lookups": window, "hits": hits,
                      "misses": misses}))
        return [alert] if alert is not None else []


class CheckpointOverrunDetector(Detector):
    """Time since the last checkpoint exceeding the configured interval.

    Disabled unless an ``interval_s`` is configured (checkpointing is
    optional); ``overrun_factor`` gives the run headroom before the
    first warning.  Uses stream timestamps, so replay reproduces the
    verdicts.
    """

    kind = "checkpoint-overrun"

    def __init__(self, interval_s: float | None = None,
                 overrun_factor: float = 2.0):
        super().__init__()
        self.interval_s = None if interval_s is None else float(interval_s)
        self.overrun_factor = float(overrun_factor)

    def update(self, aggregator) -> list:
        if self.interval_s is None or aggregator.t_last is None:
            return []
        marks = aggregator.checkpoint_marks
        last = marks[-1] if marks else aggregator.t_first
        overdue = aggregator.t_last - last
        budget = self.overrun_factor * self.interval_s
        if overdue <= budget:
            return []
        alert = self._emit(f"overrun-{len(marks)}", Alert(
            kind=self.kind, severity="warning",
            message=(f"{overdue:.1f}s since last checkpoint "
                     f"(interval {self.interval_s:.1f}s)"),
            evidence={"overdue_s": overdue,
                      "interval_s": self.interval_s,
                      "checkpoints_seen": len(marks)}))
        return [alert] if alert is not None else []


def default_detectors(checkpoint_interval_s: float | None = None) -> list:
    """The standard detector battery for a live run."""
    return [StragglerDetector(), ByteDriftDetector(),
            FallbackRateDetector(), StoreHitRateDetector(),
            CheckpointOverrunDetector(interval_s=checkpoint_interval_s)]
