"""Command-line entry point: experiments, traced runs, span reports.

Usage::

    python -m repro list
    python -m repro run fig5
    python -m repro run all
    python -m repro trace --out trace.json --jsonl spans.jsonl
    python -m repro trace --smoke --result-store .repro-cache
    python -m repro trace --smoke --live-log stream.jsonl
    python -m repro watch --replay stream.jsonl
    python -m repro watch --follow stream.jsonl
    python -m repro report spans.jsonl
    python -m repro report --checkpoint sweep.npz
    python -m repro cache stats .repro-cache
    python -m repro cache verify .repro-cache
    python -m repro cache prune .repro-cache --max-bytes 100000000
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables/figures of Calderara et al., "
                    "SC'15 (OMEN+CP2K, FEAST+SplitSolve)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("name", help="experiment id from 'list', or 'all'")

    tracep = sub.add_parser(
        "trace", help="run the traced production demo and export a "
                      "Perfetto/Chrome trace")
    tracep.add_argument("--out", default="trace.json",
                        help="Chrome-trace JSON path (default trace.json)")
    tracep.add_argument("--jsonl", default=None,
                        help="also write the raw span JSONL event log")
    tracep.add_argument("--nodes", type=int, default=2,
                        help="simulated nodes (one Perfetto track group "
                             "each; default 2)")
    tracep.add_argument("--smoke", action="store_true",
                        help="shrink to one bias point / one SCF "
                             "iteration (CI budget)")
    tracep.add_argument("--backend", choices=("thread", "process"),
                        default="thread",
                        help="task execution backend: simulated nodes on "
                             "threads (default) or worker OS processes "
                             "with merged telemetry")
    tracep.add_argument("--telemetry-out", default=None,
                        help="write the merged RunTelemetry snapshot as "
                             "JSON (machine-readable CI artifact)")
    tracep.add_argument("--kernel-backend", default=None,
                        help="kernel backend for the batched linear "
                             "algebra: numpy (bitwise reference), mixed "
                             "(complex64 LU + iterative refinement), "
                             "simulated-gpu, numba, or auto (per-node "
                             "resolution); default: REPRO_KERNEL_BACKEND "
                             "env var, else numpy")
    tracep.add_argument("--result-store", default=None,
                        help="persistent result-store root directory: "
                             "publish every solved (k, E) point and "
                             "merge prior runs' results back "
                             "bitwise-identically (warm re-runs skip "
                             "the solves)")
    tracep.add_argument("--live", action="store_true",
                        help="enable the live telemetry bus (rolling "
                             "view, anomaly detectors, SLO rules) while "
                             "the run executes")
    tracep.add_argument("--live-log", default=None,
                        help="record the live event stream to this "
                             "JSONL file for 'repro watch --replay' "
                             "(implies --live)")

    watchp = sub.add_parser(
        "watch", help="render the live-telemetry dashboard from a "
                      "recorded stream (--replay) or a stream being "
                      "written by a concurrent run (--follow)")
    watchp.add_argument("--replay", default=None,
                        help="recorded stream JSONL (from 'trace "
                             "--live-log'); renders through the full "
                             "aggregator/detector/SLO pipeline")
    watchp.add_argument("--follow", default=None,
                        help="tail a live-log file another process is "
                             "writing and refresh until it goes idle")
    watchp.add_argument("--frames", type=int, default=1,
                        help="dashboard frames to render across a "
                             "replay (default 1: final state only)")
    watchp.add_argument("--idle-timeout", type=float, default=5.0,
                        help="seconds of stream silence before --follow "
                             "exits (default 5)")

    reportp = sub.add_parser(
        "report", help="re-derive the phase/activity reports from a span "
                       "JSONL export or a checkpoint's telemetry")
    reportp.add_argument("spans", nargs="?", default=None,
                         help="span JSONL file from 'trace --jsonl'")
    reportp.add_argument("--checkpoint", default=None,
                         help="print the telemetry snapshot stored in a "
                              "checkpoint file instead")
    reportp.add_argument("--memory", action="store_true",
                         help="add the memory-movement view: arena reuse "
                              "rates and predicted-vs-measured byte "
                              "drift per stage")

    cachep = sub.add_parser(
        "cache", help="inspect or maintain a persistent result store")
    cachep.add_argument("action", choices=("stats", "verify", "prune"),
                        help="stats: object/byte counts; verify: "
                             "checksum every record; prune: LRU-evict "
                             "down to --max-bytes")
    cachep.add_argument("root", help="result-store root directory")
    cachep.add_argument("--max-bytes", type=int, default=None,
                        help="byte budget for prune")
    args = parser.parse_args(argv)

    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "cache":
        return _cmd_cache(args)

    from repro.experiments import ALL_EXPERIMENTS

    if args.command == "list":
        for name, mod in ALL_EXPERIMENTS.items():
            doc = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<16s} {doc}")
        return 0

    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'python -m repro "
                  f"list'", file=sys.stderr)
            return 2
        mod = ALL_EXPERIMENTS[name]
        t0 = time.perf_counter()
        results = mod.run()
        print(mod.report(results))
        _report_telemetry(results)
        print(f"[{name}: {time.perf_counter() - t0:.1f} s]\n")
    return 0


def _cmd_trace(args) -> int:
    from repro.observability import (activity_report, node_activity,
                                     phase_report, roofline_report,
                                     validate_chrome_trace)
    from repro.observability.demo import traced_production_demo

    t0 = time.perf_counter()
    demo = traced_production_demo(num_nodes=args.nodes, smoke=args.smoke,
                                  trace_path=args.out,
                                  jsonl_path=args.jsonl,
                                  backend=args.backend,
                                  kernel_backend=args.kernel_backend,
                                  result_store=args.result_store,
                                  live=args.live,
                                  live_log=args.live_log)
    elapsed = time.perf_counter() - t0

    print(f"backend: {args.backend} ({args.nodes} workers)")
    if args.kernel_backend:
        print(f"kernel backend: {args.kernel_backend}")
    print(demo["result"].iv_table())
    print()
    print(phase_report(demo["totals"]))
    print()
    # A fully warm result-store run emits no stage spans and no flops:
    # there is no activity table and no roofline to print.
    if any(sp.category == "stage" for sp in demo["spans"]):
        print(activity_report(node_activity(demo["spans"])))
        print()
    if demo["roofline"]:
        print(roofline_report(demo["roofline"], device_name="Titan K20X"))
        print()
    if args.result_store:
        from repro.observability import cache_report
        print(cache_report(demo["spans"]))
        print()
    print("run telemetry:")
    print(demo["telemetry"].summary())
    print()
    print("metrics:")
    for row in demo["metrics"].as_rows():
        print("  " + row)
    print()
    live = demo.get("live")
    if live is not None:
        print(f"live telemetry: {live['events']} events "
              f"({live['published']} published, {live['dropped']} "
              f"dropped), {len(live['alerts'])} alerts, "
              f"{sum(1 for s in live['slo'] if not s['ok'])} SLO "
              f"violations")
        for alert in live["alerts"][:5]:
            print(f"  [{alert['severity']}] {alert['kind']}: "
                  f"{alert['message']}")
        if demo.get("live_log"):
            print(f"  stream recorded to {demo['live_log']} "
                  f"({live['records_written']} records)")
        print()
    check = demo["reconciliation"]
    print(f"reconciliation: flops "
          f"{'EXACT' if check['flops_exact'] else 'MISMATCH'} "
          f"({check['span_flops']:,d} span == "
          f"{check['ledger_flops']:,d} ledger), bytes "
          f"{'EXACT' if check['bytes_exact'] else 'MISMATCH'} "
          f"({check['span_bytes']:,d} span == "
          f"{check['ledger_bytes']:,d} ledger), seconds "
          f"{'OK' if check['seconds_close'] else 'MISMATCH'} "
          f"(max delta {check['max_seconds_delta']:.2e} s)")
    import json
    with open(args.out) as fh:
        slices = validate_chrome_trace(json.load(fh))
    print(f"wrote {args.out}: {slices} slices, "
          f"{len({sp.worker for sp in demo['spans']})} tracks "
          f"(load it at https://ui.perfetto.dev)")
    if args.jsonl:
        print(f"wrote {args.jsonl}: {len(demo['spans'])} span records")
    if args.telemetry_out:
        payload = {"backend": args.backend,
                   "num_nodes": int(args.nodes),
                   "reconciliation": check,
                   "telemetry": demo["telemetry"].snapshot()}
        if live is not None:
            payload["live"] = {"events": live["events"],
                               "dropped": live["dropped"],
                               "alerts": live["alerts"],
                               "slo": live["slo"]}
        with open(args.telemetry_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.telemetry_out}: merged telemetry snapshot")
    print(f"[trace: {elapsed:.1f} s]")
    return 0 if (check["flops_exact"] and check["bytes_exact"]
                 and check["seconds_close"]) else 1


def _cmd_watch(args) -> int:
    if (args.replay is None) == (args.follow is None):
        print("watch needs exactly one of --replay or --follow",
              file=sys.stderr)
        return 2
    from repro.observability.watch import watch_follow, watch_replay
    if args.replay is not None:
        monitor = watch_replay(args.replay, frames=args.frames)
    else:
        monitor = watch_follow(args.follow,
                               idle_timeout=args.idle_timeout)
    failing = [s for s in monitor.slo_statuses if not s.ok]
    return 0 if not failing else 1


def _cmd_report(args) -> int:
    if args.checkpoint is not None:
        from repro.runtime import RunTelemetry
        from repro.runtime.checkpoint import CheckpointStore
        snap = CheckpointStore(args.checkpoint).load_telemetry()
        if snap is None:
            print(f"{args.checkpoint} holds no telemetry snapshot",
                  file=sys.stderr)
            return 2
        telemetry = RunTelemetry()
        telemetry.restore(snap)
        print(f"telemetry snapshot from {args.checkpoint}:")
        print(telemetry.summary())
        return 0
    if args.spans is None:
        print("need a span JSONL file or --checkpoint",
              file=sys.stderr)
        return 2
    from repro.observability import (activity_report, cache_report,
                                     cache_totals, memory_report,
                                     node_activity, phase_report,
                                     phase_totals, read_spans_jsonl)
    spans = read_spans_jsonl(args.spans)
    if not spans:
        print(f"{args.spans} holds no spans", file=sys.stderr)
        return 2
    print(f"{len(spans)} spans from {args.spans}")
    print(phase_report(phase_totals(spans)))
    print()
    print(activity_report(node_activity(spans)))
    if cache_totals(spans)["probes"]:
        print()
        print(cache_report(spans))
    if args.memory:
        print()
        print(memory_report(spans))
    return 0


def _cmd_cache(args) -> int:
    from repro.cache import ResultStore
    store = ResultStore(args.root)
    if args.action == "stats":
        s = store.stats()
        print(f"result store at {s['root']}")
        print(f"  {s['objects']} objects, "
              f"{s['total_bytes'] / 1e6:.2f} MB")
        if s["calibrations"]:
            print("  calibrations: " + ", ".join(s["calibrations"]))
        return 0
    if args.action == "verify":
        v = store.verify()
        print(f"checked {v['checked']} objects, "
              f"{len(v['corrupt'])} corrupt")
        for key in v["corrupt"]:
            print(f"  corrupt: {key}")
        return 0 if not v["corrupt"] else 1
    if args.max_bytes is None:
        print("prune needs --max-bytes", file=sys.stderr)
        return 2
    r = store.prune(args.max_bytes)
    print(f"removed {r['removed']} objects, "
          f"freed {r['freed_bytes'] / 1e6:.2f} MB "
          f"({r['total_bytes'] / 1e6:.2f} MB remain)")
    return 0


def _report_telemetry(results) -> None:
    """Print the RunTelemetry of an experiment that collected one."""
    telemetry = results.get("telemetry") if isinstance(results, dict) \
        else getattr(results, "telemetry", None)
    if telemetry is None or not hasattr(telemetry, "summary"):
        return
    print("run telemetry (retries / wasted flops / stage breakdown):")
    print(telemetry.summary())


if __name__ == "__main__":
    raise SystemExit(main())
