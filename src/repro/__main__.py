"""Command-line entry point: list and run the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig5
    python -m repro run all
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables/figures of Calderara et al., "
                    "SC'15 (OMEN+CP2K, FEAST+SplitSolve)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("name", help="experiment id from 'list', or 'all'")
    args = parser.parse_args(argv)

    from repro.experiments import ALL_EXPERIMENTS

    if args.command == "list":
        for name, mod in ALL_EXPERIMENTS.items():
            doc = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<16s} {doc}")
        return 0

    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'python -m repro "
                  f"list'", file=sys.stderr)
            return 2
        mod = ALL_EXPERIMENTS[name]
        t0 = time.perf_counter()
        results = mod.run()
        print(mod.report(results))
        _report_telemetry(results)
        print(f"[{name}: {time.perf_counter() - t0:.1f} s]\n")
    return 0


def _report_telemetry(results) -> None:
    """Print the RunTelemetry of an experiment that collected one."""
    telemetry = results.get("telemetry") if isinstance(results, dict) \
        else getattr(results, "telemetry", None)
    if telemetry is None or not hasattr(telemetry, "summary"):
        return
    print("run telemetry (retries / wasted flops / stage breakdown):")
    print(telemetry.summary())


if __name__ == "__main__":
    raise SystemExit(main())
