"""Argument validation helpers shared across the package."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigurationError, ShapeError


def check_square(a, name: str = "matrix") -> np.ndarray:
    """Return ``a`` as an ndarray, raising :class:`ShapeError` if not square."""
    a = np.asarray(a)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"{name} must be square 2-D, got shape {a.shape}")
    return a


def check_finite(a, name: str = "array") -> np.ndarray:
    """Raise :class:`ShapeError` if ``a`` contains NaN or Inf."""
    a = np.asarray(a)
    if not np.all(np.isfinite(a)):
        raise ShapeError(f"{name} contains non-finite entries")
    return a


def check_positive(value, name: str = "value"):
    """Raise :class:`ConfigurationError` unless ``value`` > 0."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def check_power_of_two(n: int, name: str = "value") -> int:
    """Raise unless ``n`` is a positive power of two (SplitSolve partitions)."""
    n = int(n)
    if n < 1 or (n & (n - 1)) != 0:
        raise ConfigurationError(f"{name} must be a power of two, got {n}")
    return n


def as_complex_array(a) -> np.ndarray:
    """Return a C-contiguous complex128 copy-or-view of ``a``."""
    return np.ascontiguousarray(a, dtype=np.complex128)
