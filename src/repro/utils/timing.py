"""Lightweight wall-clock timers used for profiling and phase traces."""

from __future__ import annotations

import time
from contextlib import contextmanager


class Timer:
    """Accumulating wall-clock timer.

    Usage::

        t = Timer()
        with t:
            do_work()
        print(t.elapsed)
    """

    def __init__(self):
        self.elapsed = 0.0
        self.calls = 0
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.elapsed += time.perf_counter() - self._start
        self.calls += 1
        self._start = None
        return False

    def reset(self):
        self.elapsed = 0.0
        self.calls = 0


class StageTimer:
    """Named per-stage timers, e.g. for the SplitSolve phases P1..P4.

    ``stage()`` is a context manager; :attr:`stages` maps name -> seconds.
    Stage order of first use is preserved, which the phase-trace plots rely
    on.
    """

    def __init__(self):
        self.stages: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stages[name] = self.stages.get(name, 0.0) + (
                time.perf_counter() - start
            )

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def as_rows(self):
        """Return ``(name, seconds, fraction)`` rows for report printing."""
        total = self.total or 1.0
        return [(k, v, v / total) for k, v in self.stages.items()]
