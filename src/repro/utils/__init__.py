"""Shared infrastructure: errors, timers, validation, reproducible RNG."""

from repro.utils.errors import (
    ReproError,
    ConfigurationError,
    ConvergenceError,
    ShapeError,
    SingularMatrixError,
)
from repro.utils.timing import Timer, StageTimer
from repro.utils.validation import (
    check_square,
    check_finite,
    check_positive,
    check_power_of_two,
    as_complex_array,
)
from repro.utils.rng import make_rng

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ConvergenceError",
    "ShapeError",
    "SingularMatrixError",
    "Timer",
    "StageTimer",
    "check_square",
    "check_finite",
    "check_positive",
    "check_power_of_two",
    "as_complex_array",
    "make_rng",
]
