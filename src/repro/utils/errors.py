"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so a
caller embedding the simulator can catch one type.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget.

    Attributes
    ----------
    iterations : int
        Number of iterations performed before giving up.
    residual : float
        Final residual (algorithm-specific norm), ``nan`` if unknown.
    """

    def __init__(self, message, iterations=0, residual=float("nan")):
        super().__init__(message)
        self.iterations = int(iterations)
        self.residual = float(residual)


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong shape or inconsistent dimensions."""


class SingularMatrixError(ReproError):
    """A matrix that must be invertible is numerically singular."""
