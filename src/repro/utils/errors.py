"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so a
caller embedding the simulator can catch one type.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget.

    Attributes
    ----------
    iterations : int
        Number of iterations performed before giving up.
    residual : float
        Final residual (algorithm-specific norm), ``nan`` if unknown.
    """

    def __init__(self, message, iterations=0, residual=float("nan")):
        super().__init__(message)
        self.iterations = int(iterations)
        self.residual = float(residual)


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong shape or inconsistent dimensions."""


class ArenaError(ReproError):
    """Misuse of a :class:`repro.linalg.arena.Workspace` buffer arena."""


class ArenaLeakError(ArenaError):
    """Buffers were still checked out when the workspace was closed."""


class ArenaAliasError(ArenaError):
    """A released array aliases (views into) a checked-out buffer."""


class SingularMatrixError(ReproError):
    """A matrix that must be invertible is numerically singular."""


class TaskExecutionError(ReproError):
    """A (k, E) task failed inside a task runner.

    Attributes
    ----------
    task_index : int
        Position of the failed task in the submitted task list (-1 if
        unknown).
    node : str
        Simulated node the task was running on when it failed.
    attempts : int
        Attempts made before giving up (1 for an unprotected runner).
    kpoint_index, energy_index : int or None
        Filled in by :func:`repro.core.runner.compute_spectrum`, which
        knows the (k, E) identity behind a flat task index.
    """

    def __init__(self, message, task_index=-1, node="", attempts=1):
        super().__init__(message)
        self.task_index = int(task_index)
        self.node = str(node)
        self.attempts = int(attempts)
        self.kpoint_index = None
        self.energy_index = None


class InjectedFaultError(ReproError):
    """A transient fault raised by :class:`repro.runtime.FaultInjector`."""

    def __init__(self, message, task_index=-1, node=""):
        super().__init__(message)
        self.task_index = int(task_index)
        self.node = str(node)


class NodeFailureError(InjectedFaultError):
    """A simulated node died (transiently or permanently) under a task."""

    def __init__(self, message, task_index=-1, node="", permanent=False):
        super().__init__(message, task_index=task_index, node=node)
        self.permanent = bool(permanent)


class TaskTimeoutError(ReproError):
    """A task exceeded the resilient runner's per-task time budget."""

    def __init__(self, message, elapsed_s=float("nan"),
                 timeout_s=float("nan")):
        super().__init__(message)
        self.elapsed_s = float(elapsed_s)
        self.timeout_s = float(timeout_s)


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or from a different run."""
