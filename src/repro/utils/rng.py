"""Reproducible random-number generation.

All stochastic pieces of the package (FEAST's random subspace ``Y_F``,
synthetic structures, workload jitter) draw from generators created here so
that every experiment is bit-reproducible given its seed.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20150715  # SC'15 submission era; arbitrary but fixed.


def make_rng(seed=None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator`.

    ``seed=None`` uses the package default (reproducible), *not* OS entropy:
    scientific runs must be repeatable unless the caller opts out by passing
    an explicit entropy-derived seed.
    """
    if seed is None:
        seed = DEFAULT_SEED
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
