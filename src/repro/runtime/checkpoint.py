"""Atomic checkpoint/restart for the long-running outer loops.

The paper's production simulations — 40-50 Schroedinger-Poisson
iterations over 10 bias points, hours of machine time each — survive
node-allocation kills only because the state between (k, E) batches is
tiny: the atom potential, the density, and the sweep bookkeeping.  This
module persists exactly that state after every completed batch, so
:func:`repro.poisson.scf.schroedinger_poisson` and
:func:`repro.core.production.run_production` resume from the last
completed iteration / bias point and reproduce the uninterrupted
trajectory bit-for-bit.

Format: one ``.npz`` archive per computation, written to a temp file and
atomically renamed over the old checkpoint (a kill mid-write never
corrupts the previous one).  A ``__kind__`` tag guards against resuming
one loop from another loop's file.  Scalars round-trip through 0-d
arrays; ``allow_pickle`` stays off, so a checkpoint is plain data.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.utils.errors import CheckpointError

#: reserved key holding the telemetry/metrics snapshot (JSON text)
_TELEMETRY_KEY = "__telemetry__"


class CheckpointStore:
    """One named checkpoint file with atomic save/load/clear."""

    def __init__(self, path):
        self.path = os.fspath(path)
        #: telemetry snapshot of the most recent :meth:`load` (or None)
        self.last_telemetry: dict | None = None

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def save(self, kind: str, telemetry: dict | None = None,
             **state) -> None:
        """Atomically replace the checkpoint with ``state``.

        Values must be array-convertible (scalars, bools, lists of
        numbers, ndarrays); object arrays are rejected to keep the file
        pickle-free.  ``telemetry`` takes a JSON-serializable metrics
        snapshot (:meth:`repro.runtime.RunTelemetry.snapshot`) stored as
        JSON text, so a resumed run's failure/retry/stage accounting
        covers the whole job, not just the post-restart tail.
        """
        arrays = {"__kind__": np.asarray(kind)}
        if telemetry is not None:
            arrays[_TELEMETRY_KEY] = np.asarray(json.dumps(telemetry))
        for key, value in state.items():
            arr = np.asarray(value)
            if arr.dtype == object:
                raise CheckpointError(
                    f"checkpoint value {key!r} is not plain numeric data")
            arrays[key] = arr
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp, self.path)

    def load(self, kind: str | None = None) -> dict:
        """Read the checkpoint back; 0-d arrays become Python scalars."""
        if not self.exists():
            raise CheckpointError(f"no checkpoint at {self.path}")
        try:
            with np.load(self.path, allow_pickle=False) as archive:
                data = {key: archive[key] for key in archive.files}
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint {self.path}: {exc}") from exc
        stored_kind = str(data.pop("__kind__", ""))
        if kind is not None and stored_kind != kind:
            raise CheckpointError(
                f"checkpoint {self.path} holds a {stored_kind!r} state, "
                f"expected {kind!r}")
        self.last_telemetry = None
        blob = data.pop(_TELEMETRY_KEY, None)
        if blob is not None:
            try:
                self.last_telemetry = json.loads(str(blob))
            except ValueError as exc:
                raise CheckpointError(
                    f"corrupt telemetry snapshot in {self.path}: "
                    f"{exc}") from exc
        return {key: (value.item() if value.ndim == 0 else value)
                for key, value in data.items()}

    def load_telemetry(self) -> dict | None:
        """Telemetry snapshot of the checkpoint, without loading state.

        Returns ``None`` when the checkpoint has no telemetry (older
        files stay loadable).
        """
        self.load()
        return self.last_telemetry

    def clear(self) -> None:
        if self.exists():
            os.remove(self.path)


def as_store(checkpoint) -> CheckpointStore | None:
    """Coerce a user-facing ``checkpoint=`` argument to a store.

    Accepts ``None`` (checkpointing off), a path, or an existing
    :class:`CheckpointStore`.
    """
    if checkpoint is None or isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(checkpoint)
