"""Deterministic fault injection for the simulated supercomputer.

The paper's production runs hold thousands of Cray nodes for hours per
bias point; at that scale node failures, transient task errors and
stragglers are routine, and OMEN survives them only because the (k, E)
tasks are independent and re-runnable.  This module injects exactly those
failure modes into the simulated machine so the resilience layer
(:mod:`repro.runtime.resilience`) can be exercised — and so the scaling
model (:meth:`repro.hardware.machine.SimulatedMachine.run_iteration`) can
price them.

Every decision is a pure function of ``(seed, task_index, attempt)``
through a :class:`numpy.random.SeedSequence` spawn key, so the injected
fault sequence is bit-reproducible regardless of thread scheduling: the
same seed produces the same retries, and a protected run converges to the
exact fault-free result.
"""

from __future__ import annotations

import math
import threading
import time
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.utils.errors import (ConfigurationError, InjectedFaultError,
                                NodeFailureError)
from repro.utils.rng import DEFAULT_SEED


@dataclass(frozen=True)
class FaultProfile:
    """Knobs of the injected failure distribution (all per attempt).

    Parameters
    ----------
    task_failure_prob : probability a task attempt raises a transient
        fault (bit flips, link errors, the long tail of MPI aborts).
    node_death_prob : probability the node under the attempt dies.
    permanent_death_fraction : share of node deaths that are permanent —
        the node is quarantined and never hosts work again; the rest are
        transient (the task fails once, the node recovers).
    straggler_prob : probability the attempt runs on a slow node.
    straggler_delay_s : extra (simulated) wall time of a straggling
        attempt.  Charged to telemetry, and to the per-task timeout if
        one is configured; only actually slept when ``real_sleep``.
    slow_nodes : node names that straggle on *every* attempt (with
        ``straggler_delay_s`` extra time) — a deterministic per-node
        slowness, as opposed to the per-attempt coin flip of
        ``straggler_prob``; what the live straggler detector is
        exercised against.
    real_sleep : sleep ``straggler_delay_s`` for real (off by default so
        tests and examples stay fast).
    seed : base seed of the decision stream.
    """

    task_failure_prob: float = 0.0
    node_death_prob: float = 0.0
    permanent_death_fraction: float = 1.0
    straggler_prob: float = 0.0
    straggler_delay_s: float = 0.0
    slow_nodes: tuple = ()
    real_sleep: bool = False
    seed: int = DEFAULT_SEED

    def __post_init__(self):
        for name in ("task_failure_prob", "node_death_prob",
                     "permanent_death_fraction", "straggler_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.straggler_delay_s < 0:
            raise ConfigurationError("straggler_delay_s must be >= 0")

    @property
    def attempt_failure_prob(self) -> float:
        """Probability that one attempt fails for any injected reason."""
        return 1.0 - ((1.0 - self.task_failure_prob)
                      * (1.0 - self.node_death_prob))


@dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one (task, attempt, node) triple."""

    task_index: int
    attempt: int
    node: str
    fail_task: bool
    kill_node: bool
    permanent: bool
    straggle: bool
    delay_s: float

    @property
    def fails(self) -> bool:
        return self.fail_task or self.kill_node


class FaultInjector:
    """Seeded source of task faults, node deaths, and stragglers.

    Shared by the execution layer (raises faults under running tasks)
    and the performance model (prices the expected retry overhead).
    Thread-safe; the per-decision randomness never depends on call
    order, only on ``(task_index, attempt)``.
    """

    def __init__(self, profile: FaultProfile | None = None, nodes=None,
                 **knobs):
        if profile is None:
            profile = FaultProfile(**knobs)
        elif knobs:
            raise ConfigurationError(
                "pass either a FaultProfile or keyword knobs, not both")
        self.profile = profile
        self._dead_permanent: set = set()
        #: declared node universe (optional) plus every node ever seen
        #: by :meth:`inject` — what resilience layers fall back to when
        #: the wrapped runner exposes no worker count
        self._nodes: set = set(str(n) for n in nodes) if nodes else set()
        self._lock = threading.Lock()
        self.stats = defaultdict(int)

    # -- decisions ----------------------------------------------------------

    def decision(self, task_index: int, attempt: int,
                 node: str = "node0") -> FaultDecision:
        """Deterministic fault verdict; no state is mutated."""
        seq = np.random.SeedSequence(entropy=self.profile.seed,
                                     spawn_key=(int(task_index),
                                                int(attempt)))
        u = np.random.default_rng(seq).random(4)
        p = self.profile
        kill = bool(u[0] < p.node_death_prob)
        permanent = kill and bool(u[1] < p.permanent_death_fraction)
        fail = bool(u[2] < p.task_failure_prob)
        straggle = bool(u[3] < p.straggler_prob) \
            or str(node) in p.slow_nodes
        return FaultDecision(
            task_index=task_index, attempt=attempt, node=node,
            fail_task=fail, kill_node=kill, permanent=permanent,
            straggle=straggle,
            delay_s=p.straggler_delay_s if straggle else 0.0)

    def inject(self, task_index: int, attempt: int,
               node: str = "node0") -> float:
        """Apply the decision for this attempt.

        Raises :class:`NodeFailureError` (node death, or the node is
        already quarantined) or :class:`InjectedFaultError` (transient
        task fault); otherwise returns the straggler delay in seconds
        (0.0 for a healthy attempt).
        """
        with self._lock:
            self._nodes.add(str(node))
            if node in self._dead_permanent:
                self.stats["quarantine_hits"] += 1
                raise NodeFailureError(
                    f"{node} is quarantined (permanent failure)",
                    task_index=task_index, node=node, permanent=True)
        d = self.decision(task_index, attempt, node)
        if d.kill_node:
            with self._lock:
                if d.permanent:
                    self._dead_permanent.add(node)
                self.stats["node_deaths"] += 1
            raise NodeFailureError(
                f"{node} died under task {task_index} "
                f"(attempt {attempt}, "
                f"{'permanent' if d.permanent else 'transient'})",
                task_index=task_index, node=node, permanent=d.permanent)
        if d.fail_task:
            with self._lock:
                self.stats["task_faults"] += 1
            raise InjectedFaultError(
                f"injected transient fault under task {task_index} "
                f"(attempt {attempt}) on {node}",
                task_index=task_index, node=node)
        if d.straggle:
            with self._lock:
                self.stats["stragglers"] += 1
            if self.profile.real_sleep and d.delay_s > 0:
                time.sleep(d.delay_s)
        return d.delay_s

    # -- node bookkeeping ---------------------------------------------------

    def kill_node(self, node: str) -> None:
        """Manually quarantine a node (as if it died permanently)."""
        with self._lock:
            self._dead_permanent.add(str(node))
            self.stats["node_deaths"] += 1

    def node_alive(self, node: str) -> bool:
        with self._lock:
            return node not in self._dead_permanent

    def quarantined_nodes(self) -> list:
        with self._lock:
            return sorted(self._dead_permanent)

    def node_universe(self) -> list:
        """Every node this injector knows about: the declared ``nodes``
        plus every node an :meth:`inject` call ever named (quarantined
        ones included — they are still machines in the room)."""
        with self._lock:
            return sorted(self._nodes | self._dead_permanent)

    # -- performance-model hooks --------------------------------------------

    def expected_attempts(self) -> float:
        """Mean attempts per completed task (geometric retry model)."""
        p = self.profile.attempt_failure_prob
        if p >= 1.0:
            return math.inf
        return 1.0 / (1.0 - p)
