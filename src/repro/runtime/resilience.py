"""Resilient task execution: retry, backoff, timeout, quarantine.

:class:`ResilientTaskRunner` wraps any ``task_runner(tasks) -> list``
(``ThreadTaskRunner``, ``run_spmd`` adapters, or plain sequential
execution) so that each (k, E) task survives transient failures: failed
attempts are retried with exponential backoff on a fresh simulated node,
permanently dead nodes are quarantined, and everything — retries,
timeouts, wasted flops — is accounted in :class:`RunTelemetry` alongside
the flop ledger, mirroring how OMEN's production runs log re-executed
energy points.

Failed attempts run under a scratch :class:`~repro.linalg.flops.FlopLedger`
that is merged into the active ledger only on success, so the flop
accounting of a faulty-but-protected run is *identical* to the fault-free
run, and the discarded work shows up as ``wasted_flops`` instead.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field

from repro.linalg.flops import FlopLedger, current_ledger, ledger_scope
from repro.utils.errors import (ConfigurationError, NodeFailureError,
                                TaskExecutionError, TaskTimeoutError)


@dataclass
class RunTelemetry:
    """Structured failure/retry accounting of one resilient runner."""

    tasks_submitted: int = 0
    attempts: int = 0
    retries: int = 0
    giveups: int = 0
    timeouts: int = 0
    node_deaths: int = 0
    failures_by_type: dict = field(
        default_factory=lambda: defaultdict(int))
    quarantined_nodes: set = field(default_factory=set)
    wasted_flops: int = 0
    wasted_time_s: float = 0.0
    straggler_delay_s: float = 0.0
    #: aggregated pipeline stage breakdown (PREPARE/OBC/.../ANALYZE)
    stage_time_s: dict = field(default_factory=lambda: defaultdict(float))
    stage_flops: dict = field(default_factory=lambda: defaultdict(int))
    tasks_traced: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def record_attempt(self, retry: bool) -> None:
        with self._lock:
            self.attempts += 1
            if retry:
                self.retries += 1

    def record_failure(self, exc: Exception, wasted_flops: int,
                       wasted_time_s: float) -> None:
        with self._lock:
            self.failures_by_type[type(exc).__name__] += 1
            self.wasted_flops += wasted_flops
            self.wasted_time_s += wasted_time_s
            if isinstance(exc, TaskTimeoutError):
                self.timeouts += 1
            if isinstance(exc, NodeFailureError):
                self.node_deaths += 1
                if exc.permanent:
                    self.quarantined_nodes.add(exc.node)

    def record_success(self, delay_s: float) -> None:
        with self._lock:
            self.straggler_delay_s += delay_s

    def record_giveup(self) -> None:
        with self._lock:
            self.giveups += 1

    def record_task_trace(self, trace) -> None:
        """Fold one pipeline :class:`~repro.pipeline.TaskTrace` in."""
        if trace is None:
            return
        with self._lock:
            self.tasks_traced += 1
            for st in trace.stages:
                self.stage_time_s[st.name] += st.seconds
                self.stage_flops[st.name] += st.flops

    @property
    def traced_flops(self) -> int:
        with self._lock:
            return int(sum(self.stage_flops.values()))

    @property
    def total_failures(self) -> int:
        with self._lock:
            return sum(self.failures_by_type.values())

    def summary(self) -> str:
        rows = [
            f"tasks       {self.tasks_submitted}",
            f"attempts    {self.attempts}",
            f"retries     {self.retries}",
            f"failures    {self.total_failures} "
            f"{dict(self.failures_by_type)}",
            f"timeouts    {self.timeouts}",
            f"node deaths {self.node_deaths} "
            f"(quarantined: {sorted(self.quarantined_nodes) or '-'})",
            f"give-ups    {self.giveups}",
            f"wasted      {self.wasted_flops:.3g} flops, "
            f"{self.wasted_time_s:.3g} s "
            f"(+{self.straggler_delay_s:.3g} s straggling)",
        ]
        if self.tasks_traced:
            total_t = sum(self.stage_time_s.values()) or 1.0
            rows.append(f"stages      ({self.tasks_traced} tasks traced)")
            for name in self.stage_time_s:
                t = self.stage_time_s[name]
                rows.append(
                    f"  {name:<9s} {t * 1e3:9.2f} ms ({t / total_t:5.1%})"
                    f"  {self.stage_flops.get(name, 0):>14,d} flop")
        return "\n".join("  " + r for r in rows)


class ResilientTaskRunner:
    """Per-task retry + backoff + timeout around any task runner.

    Parameters
    ----------
    task_runner : callable or None
        The wrapped ``task_runner(tasks) -> list``; ``None`` executes
        sequentially in-process.
    max_retries : int
        Extra attempts after the first (so a task runs at most
        ``max_retries + 1`` times) before a
        :class:`~repro.utils.errors.TaskExecutionError` gives up.
    backoff_s, backoff_factor, backoff_cap_s :
        Exponential backoff between attempts of one task:
        ``min(backoff_s * backoff_factor**(attempt-1), backoff_cap_s)``
        seconds.  ``backoff_s=0`` (default) disables sleeping, which is
        what the simulated machine wants.
    timeout_s : float, optional
        Per-attempt wall-clock budget.  An attempt whose (real + injected
        straggler) time exceeds it is discarded and retried; threads
        cannot be interrupted, so the attempt runs to completion and its
        flops are charged to ``wasted_flops``.
    fault_injector : :class:`repro.runtime.faults.FaultInjector`, optional
        Injected faults are applied per attempt; retries of a task move
        it to the next simulated node, modelling rescheduling away from a
        dead host.

    Notes
    -----
    Retries re-execute the identical, side-effect-free task closure, so a
    protected run returns results bit-identical to a fault-free run —
    the property the determinism tests pin down.
    """

    def __init__(self, task_runner=None, *, max_retries: int = 3,
                 backoff_s: float = 0.0, backoff_factor: float = 2.0,
                 backoff_cap_s: float = 1.0, timeout_s: float | None = None,
                 fault_injector=None, retry_on=(Exception,)):
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if backoff_s < 0 or backoff_factor < 1 or backoff_cap_s < 0:
            raise ConfigurationError(
                "backoff_s/backoff_cap_s must be >= 0 and "
                "backoff_factor >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        self.task_runner = task_runner
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.backoff_cap_s = float(backoff_cap_s)
        self.timeout_s = timeout_s
        self.fault_injector = fault_injector
        self.retry_on = retry_on
        self.telemetry = RunTelemetry()

    @property
    def num_workers(self) -> int:
        """Simulated node count behind the wrapped runner."""
        return int(getattr(self.task_runner, "num_workers", 1))

    @property
    def task_times(self) -> list:
        """Per-task times of the wrapped runner, when it records them."""
        return getattr(self.task_runner, "task_times", [])

    def __call__(self, tasks) -> list:
        tasks = list(tasks)
        with self.telemetry._lock:
            self.telemetry.tasks_submitted += len(tasks)
        guarded = [self._make_resilient(i, t) for i, t in enumerate(tasks)]
        if self.task_runner is None:
            return [g() for g in guarded]
        return self.task_runner(guarded)

    # -- internals ----------------------------------------------------------

    def _backoff(self, attempt: int) -> None:
        if self.backoff_s <= 0:
            return
        time.sleep(min(self.backoff_s * self.backoff_factor
                       ** (attempt - 1), self.backoff_cap_s))

    def _make_resilient(self, index: int, task):
        def run():
            workers = max(self.num_workers, 1)
            last_exc = None
            node = f"node{index % workers}"
            for attempt in range(self.max_retries + 1):
                # reschedule retries onto the next node round-robin, so a
                # permanently dead node does not eat every attempt
                node = f"node{(index + attempt) % workers}"
                if attempt:
                    self._backoff(attempt)
                self.telemetry.record_attempt(retry=attempt > 0)
                target = current_ledger()
                probe = FlopLedger()
                t0 = time.perf_counter()
                delay = 0.0
                try:
                    if self.fault_injector is not None:
                        delay = self.fault_injector.inject(index, attempt,
                                                           node)
                    with ledger_scope(probe):
                        out = task()
                    elapsed = time.perf_counter() - t0 + delay
                    if self.timeout_s is not None \
                            and elapsed > self.timeout_s:
                        raise TaskTimeoutError(
                            f"task {index} attempt {attempt} took "
                            f"{elapsed:.3g} s (budget {self.timeout_s} s)",
                            elapsed_s=elapsed, timeout_s=self.timeout_s)
                except self.retry_on as exc:
                    if isinstance(exc, ConfigurationError):
                        raise  # a programming error is never transient
                    self.telemetry.record_failure(
                        exc, probe.total_flops,
                        time.perf_counter() - t0)
                    last_exc = exc
                    continue
                target.merge(probe)
                self.telemetry.record_success(delay)
                return out
            self.telemetry.record_giveup()
            raise TaskExecutionError(
                f"task {index} failed after {self.max_retries + 1} "
                f"attempts (last on {node}): {last_exc}",
                task_index=index, node=node,
                attempts=self.max_retries + 1) from last_exc
        return run
