"""Resilient task execution: retry, backoff, timeout, quarantine.

:class:`ResilientTaskRunner` wraps any ``task_runner(tasks) -> list``
(``ThreadTaskRunner``, ``run_spmd`` adapters, or plain sequential
execution) so that each (k, E) task survives transient failures: failed
attempts are retried with exponential backoff on a fresh simulated node,
permanently dead nodes are quarantined, and everything — retries,
timeouts, wasted flops — is accounted in :class:`RunTelemetry` alongside
the flop ledger, mirroring how OMEN's production runs log re-executed
energy points.

Failed attempts run under a scratch :class:`~repro.linalg.flops.FlopLedger`
that is merged into the active ledger only on success, so the flop
accounting of a faulty-but-protected run is *identical* to the fault-free
run, and the discarded work shows up as ``wasted_flops`` instead.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

from repro.linalg.flops import FlopLedger, current_ledger, ledger_scope
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import current_tracer
from repro.utils.errors import (ConfigurationError, NodeFailureError,
                                TaskExecutionError, TaskTimeoutError)


@dataclass(frozen=True)
class RetryPolicy:
    """Plain-data retry parameters that survive the pickle boundary.

    The worker-side twin of :class:`ResilientTaskRunner`'s settings:
    :func:`_retry_run` re-reads them inside the worker process, so the
    process backend gets the same per-task retry/backoff/timeout
    semantics the in-process closures provide.
    """

    max_retries: int = 3
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_cap_s: float = 1.0
    timeout_s: float | None = None
    retry_on: tuple = (Exception,)
    task_index: int = 0


def _retry_run(policy: RetryPolicy, descriptor):
    """Worker-side retry loop around one task descriptor.

    Module-level (pickled by reference): when
    :class:`ResilientTaskRunner` wraps a descriptor-shipping runner like
    :class:`~repro.parallel.process.ProcessTaskRunner`, the guarded task
    it builds carries ``TaskDescriptor(_retry_run, (policy, inner))`` —
    so retries execute *inside the worker*, next to the failure, instead
    of needing the un-picklable parent closure.

    Accounting mirrors the in-process path: each attempt runs under a
    probe ledger merged into the worker's task ledger only on success,
    so a retried-but-recovered unit ships home the same flop totals as
    a fault-free one.  Counters go through the worker-local tracer
    metrics (merged into the runner telemetry by the parent) — only the
    *extra* attempts are counted here, because the process runner
    already records one attempt per submitted task.  A
    :class:`~repro.utils.errors.ConfigurationError` is never retried.
    """
    last_exc = None
    tracer = current_tracer()
    for attempt in range(policy.max_retries + 1):
        if attempt:
            if policy.backoff_s > 0:
                time.sleep(min(policy.backoff_s * policy.backoff_factor
                               ** (attempt - 1), policy.backoff_cap_s))
            if tracer is not None:
                tracer.metrics.counter("attempts").inc()
                tracer.metrics.counter("retries").inc()
        target = current_ledger()
        probe = FlopLedger()
        t0 = time.perf_counter()
        try:
            with ledger_scope(probe):
                out = descriptor.run()
            elapsed = time.perf_counter() - t0
            if policy.timeout_s is not None and elapsed > policy.timeout_s:
                raise TaskTimeoutError(
                    f"task {policy.task_index} attempt {attempt} took "
                    f"{elapsed:.3g} s (budget {policy.timeout_s} s)",
                    elapsed_s=elapsed, timeout_s=policy.timeout_s)
        except policy.retry_on as exc:
            if isinstance(exc, ConfigurationError):
                raise  # a programming error is never transient
            if tracer is not None:
                tracer.metrics.labeled("failures_by_type").inc(
                    type(exc).__name__)
                tracer.metrics.counter("wasted_flops").inc(
                    int(probe.total_flops))
                tracer.metrics.counter("wasted_time_s").inc(
                    time.perf_counter() - t0)
                if isinstance(exc, TaskTimeoutError):
                    tracer.metrics.counter("timeouts").inc()
            last_exc = exc
            continue
        target.merge(probe)
        return out
    if tracer is not None:
        tracer.metrics.counter("giveups").inc()
    raise TaskExecutionError(
        f"task {policy.task_index} failed after "
        f"{policy.max_retries + 1} worker-side attempts: {last_exc}",
        task_index=policy.task_index, node="",
        attempts=policy.max_retries + 1) from last_exc


class RunTelemetry:
    """Structured failure/retry accounting of one resilient runner.

    A *view* over a :class:`~repro.observability.MetricsRegistry`: every
    counter (attempts, retries, wasted flops, per-stage breakdown, ...)
    lives in the registry, and the familiar attributes are read-through
    properties.  That makes telemetry

    * **mergeable** — :meth:`merge` folds another runner's telemetry in
      without ever sharing a lock, so production runs with several
      :class:`ResilientTaskRunner` instances report one coherent total,
    * **persistable** — :meth:`snapshot` / :meth:`restore` round-trip
      through the checkpoint layer, so a restarted run's report covers
      the whole job rather than only the post-restart tail.
    """

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()

    # -- read-through views over the registry -------------------------------

    @property
    def tasks_submitted(self) -> int:
        return self.metrics.counter("tasks_submitted").value

    @property
    def attempts(self) -> int:
        return self.metrics.counter("attempts").value

    @property
    def retries(self) -> int:
        return self.metrics.counter("retries").value

    @property
    def giveups(self) -> int:
        return self.metrics.counter("giveups").value

    @property
    def timeouts(self) -> int:
        return self.metrics.counter("timeouts").value

    @property
    def node_deaths(self) -> int:
        return self.metrics.counter("node_deaths").value

    @property
    def tasks_traced(self) -> int:
        return self.metrics.counter("tasks_traced").value

    @property
    def wasted_flops(self) -> int:
        return self.metrics.counter("wasted_flops").value

    @property
    def wasted_time_s(self) -> float:
        return self.metrics.counter("wasted_time_s").value

    @property
    def straggler_delay_s(self) -> float:
        return self.metrics.counter("straggler_delay_s").value

    @property
    def failures_by_type(self) -> dict:
        return self.metrics.labeled("failures_by_type").as_dict()

    @property
    def quarantined_nodes(self) -> set:
        return set(self.metrics.labeled("quarantined_nodes").as_dict())

    @property
    def stage_time_s(self) -> dict:
        """Aggregated pipeline stage breakdown (PREPARE/.../ANALYZE)."""
        return self.metrics.labeled("stage_time_s").as_dict()

    @property
    def stage_flops(self) -> dict:
        return self.metrics.labeled("stage_flops").as_dict()

    @property
    def stage_bytes(self) -> dict:
        """Aggregated per-stage kernel traffic (ledger bytes)."""
        return self.metrics.labeled("stage_bytes").as_dict()

    # -- recording ----------------------------------------------------------

    def record_submitted(self, num_tasks: int) -> None:
        self.metrics.counter("tasks_submitted").inc(int(num_tasks))

    def record_attempt(self, retry: bool) -> None:
        self.metrics.counter("attempts").inc()
        if retry:
            self.metrics.counter("retries").inc()

    def record_failure(self, exc: Exception, wasted_flops: int,
                       wasted_time_s: float) -> None:
        self.metrics.labeled("failures_by_type").inc(type(exc).__name__)
        self.metrics.counter("wasted_flops").inc(int(wasted_flops))
        self.metrics.counter("wasted_time_s").inc(float(wasted_time_s))
        if isinstance(exc, TaskTimeoutError):
            self.metrics.counter("timeouts").inc()
        if isinstance(exc, NodeFailureError):
            self.metrics.counter("node_deaths").inc()
            if exc.permanent:
                self.metrics.labeled("quarantined_nodes").inc(
                    str(exc.node))

    def record_success(self, delay_s: float) -> None:
        self.metrics.counter("straggler_delay_s").inc(float(delay_s))

    def record_giveup(self) -> None:
        self.metrics.counter("giveups").inc()

    def record_task_trace(self, trace) -> None:
        """Fold one pipeline :class:`~repro.pipeline.TaskTrace` in."""
        if trace is None:
            return
        self.metrics.counter("tasks_traced").inc()
        times = self.metrics.labeled("stage_time_s")
        flops = self.metrics.labeled("stage_flops")
        nbytes = self.metrics.labeled("stage_bytes")
        for st in trace.stages:
            times.inc(st.name, float(st.seconds))
            flops.inc(st.name, int(st.flops))
            nbytes.inc(st.name, int(st.meta.get("bytes", 0)))

    # -- aggregation / persistence ------------------------------------------

    def merge(self, other: "RunTelemetry") -> "RunTelemetry":
        """Fold another runner's telemetry in (lock-free across objects:
        the source is snapshotted first, then the snapshot is applied).
        Returns ``self`` so totals chain: ``a.merge(b).merge(c)``."""
        self.metrics.merge_snapshot(other.metrics.snapshot())
        return self

    def snapshot(self) -> dict:
        """JSON-serializable state (what the checkpoint layer persists)."""
        return self.metrics.snapshot()

    def restore(self, snap: dict | None) -> None:
        """Merge a persisted snapshot back in (on checkpoint resume)."""
        if snap:
            self.metrics.merge_snapshot(snap)

    @classmethod
    def from_snapshot(cls, snap: dict) -> "RunTelemetry":
        """A telemetry view over a shipped metrics snapshot (the form a
        worker process sends home)."""
        return cls(MetricsRegistry.from_snapshot(snap))

    @property
    def traced_flops(self) -> int:
        return int(sum(self.stage_flops.values()))

    @property
    def total_failures(self) -> int:
        return sum(self.failures_by_type.values())

    def summary(self) -> str:
        rows = [
            f"tasks       {self.tasks_submitted}",
            f"attempts    {self.attempts}",
            f"retries     {self.retries}",
            f"failures    {self.total_failures} "
            f"{dict(self.failures_by_type)}",
            f"timeouts    {self.timeouts}",
            f"node deaths {self.node_deaths} "
            f"(quarantined: {sorted(self.quarantined_nodes) or '-'})",
            f"give-ups    {self.giveups}",
            f"wasted      {self.wasted_flops:.3g} flops, "
            f"{self.wasted_time_s:.3g} s "
            f"(+{self.straggler_delay_s:.3g} s straggling)",
        ]
        if self.tasks_traced:
            total_t = sum(self.stage_time_s.values()) or 1.0
            rows.append(f"stages      ({self.tasks_traced} tasks traced)")
            for name in self.stage_time_s:
                t = self.stage_time_s[name]
                rows.append(
                    f"  {name:<9s} {t * 1e3:9.2f} ms ({t / total_t:5.1%})"
                    f"  {self.stage_flops.get(name, 0):>14,d} flop")
        return "\n".join("  " + r for r in rows)


class ResilientTaskRunner:
    """Per-task retry + backoff + timeout around any task runner.

    Parameters
    ----------
    task_runner : callable or None
        The wrapped ``task_runner(tasks) -> list``; ``None`` executes
        sequentially in-process.
    max_retries : int
        Extra attempts after the first (so a task runs at most
        ``max_retries + 1`` times) before a
        :class:`~repro.utils.errors.TaskExecutionError` gives up.
    backoff_s, backoff_factor, backoff_cap_s :
        Exponential backoff between attempts of one task:
        ``min(backoff_s * backoff_factor**(attempt-1), backoff_cap_s)``
        seconds.  ``backoff_s=0`` (default) disables sleeping, which is
        what the simulated machine wants.
    timeout_s : float, optional
        Per-attempt wall-clock budget.  An attempt whose (real + injected
        straggler) time exceeds it is discarded and retried; threads
        cannot be interrupted, so the attempt runs to completion and its
        flops are charged to ``wasted_flops``.
    fault_injector : :class:`repro.runtime.faults.FaultInjector`, optional
        Injected faults are applied per attempt; retries of a task move
        it to the next simulated node, modelling rescheduling away from a
        dead host.

    Notes
    -----
    Retries re-execute the identical, side-effect-free task closure, so a
    protected run returns results bit-identical to a fault-free run —
    the property the determinism tests pin down.

    When a wrapped task carries a
    :class:`~repro.parallel.serialization.TaskDescriptor` (the process
    backend's shipping format), the guarded task gets one too:
    ``TaskDescriptor(_retry_run, (RetryPolicy(...), inner))``.  The
    retry loop then runs *inside the worker process* with the same
    policy, so ``ResilientTaskRunner(ProcessTaskRunner(...))`` composes
    — fault injection stays parent-side only, but real worker exceptions
    are retried next to where they happened.
    """

    def __init__(self, task_runner=None, *, max_retries: int = 3,
                 backoff_s: float = 0.0, backoff_factor: float = 2.0,
                 backoff_cap_s: float = 1.0, timeout_s: float | None = None,
                 fault_injector=None, retry_on=(Exception,)):
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if backoff_s < 0 or backoff_factor < 1 or backoff_cap_s < 0:
            raise ConfigurationError(
                "backoff_s/backoff_cap_s must be >= 0 and "
                "backoff_factor >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        self.task_runner = task_runner
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.backoff_cap_s = float(backoff_cap_s)
        self.timeout_s = timeout_s
        self.fault_injector = fault_injector
        self.retry_on = retry_on
        # Share the wrapped runner's telemetry when it keeps one (the
        # process runner does): worker metrics merge into the inner
        # object, parent-side submissions record into this one — one
        # shared registry means one coherent report, no double count.
        inner = getattr(task_runner, "telemetry", None)
        self._shared_telemetry = isinstance(inner, RunTelemetry)
        self.telemetry = inner if self._shared_telemetry \
            else RunTelemetry()

    @property
    def num_workers(self) -> int:
        """Simulated node count behind the wrapped runner.

        Retries reschedule round-robin over this many nodes, so the
        fallback when the wrapped runner exposes no ``num_workers``
        matters: a fallback of 1 would land every retry back on the same
        simulated node, defeating the "retry on a fresh node" contract.
        The fallback therefore derives from the fault injector's node
        universe when one is known, and otherwise assumes
        ``max_retries + 1`` distinct nodes — enough for every attempt of
        a task to run on a fresh node — with an explicit warning.
        """
        n = getattr(self.task_runner, "num_workers", None)
        if n is not None:
            return int(n)
        if self.fault_injector is not None:
            universe = self.fault_injector.node_universe()
            if universe:
                return len(universe)
        fallback = self.max_retries + 1
        warnings.warn(
            f"wrapped task runner exposes no num_workers; assuming "
            f"{fallback} simulated node(s) so retries still move to "
            f"fresh nodes", RuntimeWarning, stacklevel=2)
        return fallback

    @property
    def task_times(self) -> list:
        """Per-task times of the wrapped runner, when it records them."""
        return getattr(self.task_runner, "task_times", [])

    def __call__(self, tasks) -> list:
        tasks = list(tasks)
        if not self._shared_telemetry:
            # a telemetry-keeping wrapped runner records its own
            # submissions into the shared registry; recording here too
            # would double count
            self.telemetry.record_submitted(len(tasks))
        guarded = [self._make_resilient(i, t) for i, t in enumerate(tasks)]
        if self.task_runner is None:
            return [g() for g in guarded]
        return self.task_runner(guarded)

    # -- internals ----------------------------------------------------------

    def _backoff(self, attempt: int) -> None:
        if self.backoff_s <= 0:
            return
        time.sleep(min(self.backoff_s * self.backoff_factor
                       ** (attempt - 1), self.backoff_cap_s))

    def _make_resilient(self, index: int, task):
        def run():
            workers = max(self.num_workers, 1)
            last_exc = None
            node = f"node{index % workers}"
            for attempt in range(self.max_retries + 1):
                # reschedule retries onto the next node round-robin, so a
                # permanently dead node does not eat every attempt
                node = f"node{(index + attempt) % workers}"
                if attempt:
                    self._backoff(attempt)
                self.telemetry.record_attempt(retry=attempt > 0)
                target = current_ledger()
                probe = FlopLedger()
                t0 = time.perf_counter()
                delay = 0.0
                try:
                    if self.fault_injector is not None:
                        delay = self.fault_injector.inject(index, attempt,
                                                           node)
                    with ledger_scope(probe):
                        out = task()
                    elapsed = time.perf_counter() - t0 + delay
                    if self.timeout_s is not None \
                            and elapsed > self.timeout_s:
                        raise TaskTimeoutError(
                            f"task {index} attempt {attempt} took "
                            f"{elapsed:.3g} s (budget {self.timeout_s} s)",
                            elapsed_s=elapsed, timeout_s=self.timeout_s)
                except self.retry_on as exc:
                    if isinstance(exc, ConfigurationError):
                        raise  # a programming error is never transient
                    # wasted time includes the injected straggler delay:
                    # the timeout decision above is made on
                    # (real + delay), so the accounting must charge the
                    # same quantity or a timed-out attempt records less
                    # wasted time than the time that triggered it
                    self.telemetry.record_failure(
                        exc, probe.total_flops,
                        time.perf_counter() - t0 + delay)
                    tracer = current_tracer()
                    if tracer is not None:
                        tracer.instant(
                            "task-fault", category="fault", worker=node,
                            attrs={"task_index": index, "attempt": attempt,
                                   "error": type(exc).__name__})
                    last_exc = exc
                    continue
                target.merge(probe)
                self.telemetry.record_success(delay)
                if delay > 0.0:
                    tracer = current_tracer()
                    if tracer is not None:
                        # the live aggregator re-adds unslept delays to
                        # the task latency, modelling the prescribed
                        # slowness even when real_sleep is off
                        tracer.instant(
                            "straggler-delay", category="fault",
                            worker=node,
                            attrs={"task_index": index,
                                   "delay_s": float(delay),
                                   "slept": bool(
                                       self.fault_injector.profile
                                       .real_sleep)})
                return out
            self.telemetry.record_giveup()
            raise TaskExecutionError(
                f"task {index} failed after {self.max_retries + 1} "
                f"attempts (last on {node}): {last_exc}",
                task_index=index, node=node,
                attempts=self.max_retries + 1) from last_exc

        inner_desc = getattr(task, "descriptor", None)
        if inner_desc is not None:
            # descriptor-shipping runners (the process backend) cannot
            # pickle the closure above; give them a module-level retry
            # wrapper around the task's own descriptor instead, so the
            # retry loop runs worker-side with the same policy.
            from repro.parallel.serialization import TaskDescriptor
            if isinstance(inner_desc, TaskDescriptor):
                run.descriptor = TaskDescriptor(
                    fn=_retry_run,
                    args=(RetryPolicy(
                        max_retries=self.max_retries,
                        backoff_s=self.backoff_s,
                        backoff_factor=self.backoff_factor,
                        backoff_cap_s=self.backoff_cap_s,
                        timeout_s=self.timeout_s,
                        retry_on=tuple(self.retry_on),
                        task_index=index), inner_desc))
        return run

    def close(self) -> None:
        """Release the wrapped runner's resources (worker pools)."""
        close = getattr(self.task_runner, "close", None)
        if close is not None:
            close()
