"""Fault-tolerant execution runtime for the simulated supercomputer.

Three pieces, layered on top of :mod:`repro.parallel`:

1. :class:`FaultInjector` — seeded, deterministic injection of transient
   task faults, node deaths (transient or permanent), and stragglers,
   keyed on ``(task_index, attempt)`` so the fault sequence is
   independent of thread scheduling,
2. :class:`ResilientTaskRunner` — per-task retry with exponential
   backoff, soft timeouts, quarantine of permanently failed nodes, and
   :class:`RunTelemetry` (retries, give-ups, wasted flops) recorded next
   to the flop ledger,
3. :class:`CheckpointStore` — atomic checkpoint/restart of the
   Schroedinger-Poisson SCF loop and the production bias sweep, so a
   killed allocation resumes from the last completed (k, E) batch.

A protected run with faults injected produces results bit-identical to
the fault-free run (retries re-execute deterministic pure tasks), which
is the invariant the regression tests pin.
"""

from repro.runtime.checkpoint import CheckpointStore, as_store
from repro.runtime.faults import FaultDecision, FaultInjector, FaultProfile
from repro.runtime.resilience import (ResilientTaskRunner, RetryPolicy,
                                      RunTelemetry)

__all__ = [
    "CheckpointStore",
    "as_store",
    "FaultDecision",
    "FaultInjector",
    "FaultProfile",
    "ResilientTaskRunner",
    "RetryPolicy",
    "RunTelemetry",
]
