"""Legacy setup shim: the offline environment lacks the `wheel` package,
so `pip install -e .` (PEP 660) cannot build; `python setup.py develop`
or `pip install -e . --no-build-isolation` via this shim works instead."""
from setuptools import setup

setup()
